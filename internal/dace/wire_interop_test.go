package dace

import (
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// TestMixedVersionWireInterop proves the per-destination encoding
// negotiation: a legacy (pre-wire) node in the domain receives gob
// payloads it can decode, wire-capable peers keep receiving compact
// payloads on targeted channels, and nobody sees a decode error — the
// legacy peer downgrades its own traffic, not the fleet's.
func TestMixedVersionWireInterop(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	type member struct {
		node   *Node
		engine *core.Engine
	}
	addrs := []string{"node-0", "node-1", "node-2"}
	members := make([]*member, len(addrs))
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		cfg := fastCfg()
		engOpts := []core.Option{core.WithRegistry(reg)}
		if i == 2 {
			// node-2 emulates a pre-wire binary on both layers.
			cfg.LegacyWire = true
			engOpts = append(engOpts, core.WithLegacyWire())
		}
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, engOpts...)
		members[i] = &member{node: dn, engine: eng}
	}
	for _, m := range members {
		m.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.engine.Close()
		}
	})
	pub, capable, legacy := members[0], members[1], members[2]

	var gotCapable, gotLegacy atomic.Int32
	for _, sub := range []struct {
		m *member
		c *atomic.Int32
	}{{capable, &gotCapable}, {legacy, &gotLegacy}} {
		s, err := core.Subscribe(sub.m.engine, nil, func(q StockQuote) { sub.c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	// Waiting for the ads also guarantees the publisher has witnessed
	// each peer's schema version, so the encoding split is in effect.
	waitAds(t, pub.node, 2)

	const n = 10
	for i := 0; i < n; i++ {
		if err := core.Publish(pub.engine, StockQuote{StockObvent{Company: "Telco", Price: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "mixed-version delivery", func() bool {
		return gotCapable.Load() == n && gotLegacy.Load() == n
	})

	// The publisher transcoded once per event for the legacy
	// destination (node codec), while its engine codec emitted compact
	// payloads.
	if ws := pub.node.cdc.WireStats(); ws.Downgrades == 0 {
		t.Errorf("publisher node codec: Downgrades = 0, want > 0 (legacy peer in destinations); stats %+v", ws)
	}
	if ws := pub.engine.Codec().WireStats(); ws.Encodes == 0 {
		t.Errorf("publisher engine codec: wire Encodes = 0, want > 0; stats %+v", ws)
	}
	// The capable subscriber decoded compact payloads; the legacy one
	// decoded gob and never saw a compact payload.
	if ws := capable.engine.Codec().WireStats(); ws.Decodes == 0 {
		t.Errorf("capable subscriber: wire Decodes = 0, want > 0; stats %+v", ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.GobDecodes == 0 {
		t.Errorf("legacy subscriber: GobDecodes = 0, want > 0; stats %+v", ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.Decodes != 0 {
		t.Errorf("legacy subscriber: wire Decodes = %d, want 0 (must never receive compact payloads)", ws.Decodes)
	}
	for i, m := range members {
		if ds := m.engine.Stats(); ds.DecodeErrors != 0 {
			t.Errorf("node-%d: DecodeErrors = %d, want 0", i, ds.DecodeErrors)
		}
	}
}

// mixedVersionDomain builds a 3-node domain whose node-2 emulates a
// pre-wire binary, with node-1 (capable) and node-2 (legacy) subscribed
// to orderedTick (total order) and fifoTick (FIFO).
func mixedVersionDomain(t *testing.T, net *netsim.Network, mutate func(i int, cfg *Config)) (pub, capable, legacy *testNode, gotCapable, gotLegacy *atomic.Int32) {
	t.Helper()
	addrs := []string{"node-0", "node-1", "node-2"}
	members := make([]*testNode, len(addrs))
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		cfg := fastCfg()
		engOpts := []core.Option{core.WithRegistry(reg)}
		if i == 2 {
			cfg.LegacyWire = true
			engOpts = append(engOpts, core.WithLegacyWire())
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, engOpts...)
		members[i] = &testNode{node: dn, engine: eng}
	}
	for _, m := range members {
		m.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.engine.Close()
		}
	})
	pub, capable, legacy = members[0], members[1], members[2]

	gotCapable, gotLegacy = new(atomic.Int32), new(atomic.Int32)
	for _, sub := range []struct {
		m *testNode
		c *atomic.Int32
	}{{capable, gotCapable}, {legacy, gotLegacy}} {
		c := sub.c
		s, err := core.Subscribe(sub.m.engine, nil, func(o orderedTick) { c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
		s2, err := core.Subscribe(sub.m.engine, nil, func(o fifoTick) { c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s2.Activate()
	}
	// Two subscribers on two classes each: the publisher must witness
	// all four ads before publishing, or pruning would permanently skip
	// the not-yet-advertised destination.
	waitAds(t, pub.node, 4)
	return pub, capable, legacy, gotCapable, gotLegacy
}

// TestMixedVersionOrderedSplit pins the interest-aware broadcast rule
// for ordered classes: with per-destination sends, one legacy peer
// downgrades only its own traffic — the wire-capable subscriber keeps
// receiving compact payloads on FIFO and total-order channels while the
// legacy peer receives gob, with no decode errors anywhere.
func TestMixedVersionOrderedSplit(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	pub, capable, legacy, gotCapable, gotLegacy := mixedVersionDomain(t, net, nil)

	const n = 5
	for i := 0; i < n; i++ {
		if err := core.Publish(pub.engine, orderedTick{N: i}); err != nil {
			t.Fatal(err)
		}
		if err := core.Publish(pub.engine, fifoTick{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "ordered mixed-version delivery", func() bool {
		return gotCapable.Load() == 2*n && gotLegacy.Load() == 2*n
	})

	if ws := pub.node.cdc.WireStats(); ws.Downgrades == 0 {
		t.Errorf("publisher node codec: Downgrades = 0, want > 0 (legacy peer in destinations); stats %+v", ws)
	}
	// The capable subscriber saw only compact payloads; the legacy one
	// only gob.
	if ws := capable.engine.Codec().WireStats(); ws.Decodes == 0 {
		t.Errorf("capable subscriber: wire Decodes = 0, want > 0; stats %+v", ws)
	}
	if ws := capable.engine.Codec().WireStats(); ws.GobDecodes != 0 {
		t.Errorf("capable subscriber: GobDecodes = %d, want 0 (only the legacy peer's traffic transcodes); stats %+v", ws.GobDecodes, ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.GobDecodes == 0 {
		t.Errorf("legacy subscriber: GobDecodes = 0, want > 0; stats %+v", ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.Decodes != 0 {
		t.Errorf("legacy subscriber: wire Decodes = %d, want 0 (must never receive compact payloads)", ws.Decodes)
	}
	for _, m := range []*testNode{pub, capable, legacy} {
		if ds := m.engine.Stats(); ds.DecodeErrors != 0 {
			t.Errorf("%s: DecodeErrors = %d, want 0", m.node.Addr(), ds.DecodeErrors)
		}
	}
}

// TestMixedVersionBroadcastDowngrades pins the whole-frame downgrade
// rule that remains when ordered pruning is disabled: an ordered class
// then delivers one frame to the whole group, so with a legacy peer
// present the publisher transcodes the send to gob for everyone.
func TestMixedVersionBroadcastDowngrades(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	pub, capable, legacy, gotCapable, gotLegacy := mixedVersionDomain(t, net, func(_ int, cfg *Config) {
		cfg.NoOrderedPruning = true
	})

	const n = 5
	for i := 0; i < n; i++ {
		if err := core.Publish(pub.engine, orderedTick{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "downgraded broadcast delivery", func() bool {
		return gotCapable.Load() == n && gotLegacy.Load() == n
	})

	if ws := pub.node.cdc.WireStats(); ws.Downgrades == 0 {
		t.Errorf("publisher node codec: Downgrades = 0, want > 0 (broadcast with legacy peer); stats %+v", ws)
	}
	// The whole send was gob, so even the wire-capable subscriber
	// decoded gob for this class.
	if ws := capable.engine.Codec().WireStats(); ws.GobDecodes == 0 {
		t.Errorf("capable subscriber: GobDecodes = 0, want > 0 (broadcast downgraded); stats %+v", ws)
	}
	for _, m := range []*testNode{pub, capable, legacy} {
		if ds := m.engine.Stats(); ds.DecodeErrors != 0 {
			t.Errorf("%s: DecodeErrors = %d, want 0", m.node.Addr(), ds.DecodeErrors)
		}
	}
}
