package dace

import (
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// TestMixedVersionWireInterop proves the per-destination encoding
// negotiation: a legacy (pre-wire) node in the domain receives gob
// payloads it can decode, wire-capable peers keep receiving compact
// payloads on targeted channels, and nobody sees a decode error — the
// legacy peer downgrades its own traffic, not the fleet's.
func TestMixedVersionWireInterop(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	type member struct {
		node   *Node
		engine *core.Engine
	}
	addrs := []string{"node-0", "node-1", "node-2"}
	members := make([]*member, len(addrs))
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		cfg := fastCfg()
		engOpts := []core.Option{core.WithRegistry(reg)}
		if i == 2 {
			// node-2 emulates a pre-wire binary on both layers.
			cfg.LegacyWire = true
			engOpts = append(engOpts, core.WithLegacyWire())
		}
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, engOpts...)
		members[i] = &member{node: dn, engine: eng}
	}
	for _, m := range members {
		m.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.engine.Close()
		}
	})
	pub, capable, legacy := members[0], members[1], members[2]

	var gotCapable, gotLegacy atomic.Int32
	for _, sub := range []struct {
		m *member
		c *atomic.Int32
	}{{capable, &gotCapable}, {legacy, &gotLegacy}} {
		s, err := core.Subscribe(sub.m.engine, nil, func(q StockQuote) { sub.c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	// Waiting for the ads also guarantees the publisher has witnessed
	// each peer's schema version, so the encoding split is in effect.
	waitAds(t, pub.node, 2)

	const n = 10
	for i := 0; i < n; i++ {
		if err := core.Publish(pub.engine, StockQuote{StockObvent{Company: "Telco", Price: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "mixed-version delivery", func() bool {
		return gotCapable.Load() == n && gotLegacy.Load() == n
	})

	// The publisher transcoded once per event for the legacy
	// destination (node codec), while its engine codec emitted compact
	// payloads.
	if ws := pub.node.cdc.WireStats(); ws.Downgrades == 0 {
		t.Errorf("publisher node codec: Downgrades = 0, want > 0 (legacy peer in destinations); stats %+v", ws)
	}
	if ws := pub.engine.Codec().WireStats(); ws.Encodes == 0 {
		t.Errorf("publisher engine codec: wire Encodes = 0, want > 0; stats %+v", ws)
	}
	// The capable subscriber decoded compact payloads; the legacy one
	// decoded gob and never saw a compact payload.
	if ws := capable.engine.Codec().WireStats(); ws.Decodes == 0 {
		t.Errorf("capable subscriber: wire Decodes = 0, want > 0; stats %+v", ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.GobDecodes == 0 {
		t.Errorf("legacy subscriber: GobDecodes = 0, want > 0; stats %+v", ws)
	}
	if ws := legacy.engine.Codec().WireStats(); ws.Decodes != 0 {
		t.Errorf("legacy subscriber: wire Decodes = %d, want 0 (must never receive compact payloads)", ws.Decodes)
	}
	for i, m := range members {
		if ds := m.engine.Stats(); ds.DecodeErrors != 0 {
			t.Errorf("node-%d: DecodeErrors = %d, want 0", i, ds.DecodeErrors)
		}
	}
}

// TestMixedVersionBroadcastDowngrades pins the broadcast-protocol rule:
// an ordered class delivers one frame to the whole group, so with a
// legacy peer present the publisher transcodes the send to gob for
// everyone rather than splitting membership.
func TestMixedVersionBroadcastDowngrades(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	type member struct {
		node   *Node
		engine *core.Engine
	}
	addrs := []string{"node-0", "node-1", "node-2"}
	members := make([]*member, len(addrs))
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		cfg := fastCfg()
		engOpts := []core.Option{core.WithRegistry(reg)}
		if i == 2 {
			cfg.LegacyWire = true
			engOpts = append(engOpts, core.WithLegacyWire())
		}
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, engOpts...)
		members[i] = &member{node: dn, engine: eng}
	}
	for _, m := range members {
		m.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.engine.Close()
		}
	})
	pub, capable, legacy := members[0], members[1], members[2]

	var gotCapable, gotLegacy atomic.Int32
	for _, sub := range []struct {
		m *member
		c *atomic.Int32
	}{{capable, &gotCapable}, {legacy, &gotLegacy}} {
		s, err := core.Subscribe(sub.m.engine, nil, func(o orderedTick) { sub.c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	waitAds(t, pub.node, 2)

	const n = 5
	for i := 0; i < n; i++ {
		if err := core.Publish(pub.engine, orderedTick{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "ordered mixed-version delivery", func() bool {
		return gotCapable.Load() == n && gotLegacy.Load() == n
	})

	if ws := pub.node.cdc.WireStats(); ws.Downgrades == 0 {
		t.Errorf("publisher node codec: Downgrades = 0, want > 0 (broadcast with legacy peer); stats %+v", ws)
	}
	// The whole send was gob, so even the wire-capable subscriber
	// decoded gob for this class.
	if ws := capable.engine.Codec().WireStats(); ws.GobDecodes == 0 {
		t.Errorf("capable subscriber: GobDecodes = 0, want > 0 (broadcast downgraded); stats %+v", ws)
	}
	for i, m := range members {
		if ds := m.engine.Stats(); ds.DecodeErrors != 0 {
			t.Errorf("node-%d: DecodeErrors = %d, want 0", i, ds.DecodeErrors)
		}
	}
}
