package dace

import (
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// TestTelemetryMixedVersionFleet runs a mixed-version domain — one
// legacy (pre-wire, pre-telemetry-ad) node among telemetry-enabled
// ones — and requires delivery to stay intact in both directions while
// the modern nodes' stage histograms populate: the telemetry ad-schema
// bump and the envelope publish stamp must not perturb legacy peers.
func TestTelemetryMixedVersionFleet(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	type member struct {
		node   *Node
		engine *core.Engine
		tele   *telemetry.Plane
	}
	addrs := []string{"node-0", "node-1", "node-2"}
	members := make([]*member, len(addrs))
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		cfg := fastCfg()
		engOpts := []core.Option{core.WithRegistry(reg)}
		m := &member{}
		if i == 2 {
			// node-2 emulates a pre-wire, pre-telemetry binary.
			cfg.LegacyWire = true
			engOpts = append(engOpts, core.WithLegacyWire())
		} else {
			m.tele = telemetry.NewPlane()
			cfg.Telemetry = m.tele
			engOpts = append(engOpts, core.WithTelemetry(m.tele))
		}
		m.node = NewNode(ep, reg, cfg)
		m.engine = core.NewEngine(addr, m.node, engOpts...)
		members[i] = m
	}
	for _, m := range members {
		m.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.engine.Close()
		}
	})
	modernPub, modernSub, legacy := members[0], members[1], members[2]

	var gotModern, gotLegacy atomic.Int32
	for _, sub := range []struct {
		m *member
		c *atomic.Int32
	}{{modernSub, &gotModern}, {legacy, &gotLegacy}} {
		s, err := core.Subscribe(sub.m.engine, nil, func(q StockQuote) { sub.c.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	waitAds(t, modernPub.node, 2)
	waitAds(t, legacy.node, 1)

	const n = 10
	for i := 0; i < n; i++ {
		if err := core.Publish(modernPub.engine, StockQuote{StockObvent{Company: "Telco", Price: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// The legacy node publishes too: its gob envelopes carry the
	// publish stamp new receivers use for the e2e stage, and its own
	// pipeline has no telemetry plane at all.
	for i := 0; i < n; i++ {
		if err := core.Publish(legacy.engine, StockQuote{StockObvent{Company: "Retro", Price: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "mixed-version delivery", func() bool {
		return gotModern.Load() == 2*n && gotLegacy.Load() >= n
	})

	if drops := legacy.engine.Stats().DecodeErrors; drops != 0 {
		t.Errorf("legacy node saw %d decode errors", drops)
	}
	if drops := modernSub.engine.Stats().DecodeErrors; drops != 0 {
		t.Errorf("modern subscriber saw %d decode errors", drops)
	}
	for _, stage := range []string{"wire_to_lane", "lane_wait", "dispatch", "e2e"} {
		snap := modernSub.tele.Histograms()[stage]
		if snap.Count == 0 {
			t.Errorf("modern subscriber stage %s recorded nothing", stage)
		}
	}
	if snap := modernPub.tele.Histograms()["publish_to_route"]; snap.Count < n {
		t.Errorf("modern publisher publish_to_route count %d, want >= %d", snap.Count, n)
	}
}
