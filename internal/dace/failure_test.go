package dace

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/netsim"
)

func TestCertifiedClassDeliversAfterPartitionHeals(t *testing.T) {
	// Time decoupling under failure: a certified obvent published while
	// the subscriber is unreachable arrives once the partition heals
	// (§3.1.2: the notifiable "will eventually deliver the obvent").
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var got atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(q certTrade) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)

	net.Partition([]string{"node-0"}, []string{"node-1"})
	_ = core.Publish(pub.engine, certTrade{N: 1})
	time.Sleep(40 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("delivery across a partition")
	}

	net.Heal()
	waitFor(t, 10*time.Second, "delivery after heal", func() bool { return got.Load() == 1 })
}

func TestObventGlobalUniquenessAcrossNodes(t *testing.T) {
	// §2.1.2 Obvent Global Uniqueness: notifiables in different address
	// spaces receive distinct clones; mutating one subscriber's copy is
	// never visible to another.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())

	type seen struct {
		mu   sync.Mutex
		vals []string
	}
	var s1, s2 seen
	subOne, err := core.Subscribe(nodes[1].engine, nil, func(q StockQuote) {
		q.Company = "mutated-by-1" // mutate the local clone
		s1.mu.Lock()
		s1.vals = append(s1.vals, q.Company)
		s1.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = subOne.Activate()
	subTwo, err := core.Subscribe(nodes[2].engine, nil, func(q StockQuote) {
		s2.mu.Lock()
		s2.vals = append(s2.vals, q.Company)
		s2.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = subTwo.Activate()
	waitAds(t, nodes[0].node, 2)

	orig := StockQuote{StockObvent{Company: "original"}}
	_ = core.Publish(nodes[0].engine, orig)
	waitFor(t, 5*time.Second, "both deliveries", func() bool {
		s1.mu.Lock()
		n1 := len(s1.vals)
		s1.mu.Unlock()
		s2.mu.Lock()
		n2 := len(s2.vals)
		s2.mu.Unlock()
		return n1 == 1 && n2 == 1
	})
	s2.mu.Lock()
	defer s2.mu.Unlock()
	if s2.vals[0] != "original" {
		t.Fatalf("subscriber 2 observed %q: clones are shared across address spaces", s2.vals[0])
	}
	if orig.Company != "original" {
		t.Fatal("publisher's template mutated")
	}
}

func TestSubscriptionChangedWhileTrafficFlows(t *testing.T) {
	// Activations/deactivations interleaved with publications never
	// crash, deadlock or deliver to inactive subscriptions.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var active atomic.Bool
	var wrong atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(q StockQuote) {
		if !active.Load() {
			wrong.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			active.Store(true)
			if err := s.Activate(); err != nil {
				t.Errorf("activate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			// Note: deliveries already queued may still land just
			// after deactivation is requested — the engine's check is
			// at dispatch time. Give in-flight dispatch a beat.
			if err := s.Deactivate(); err != nil {
				t.Errorf("deactivate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			active.Store(false)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = core.Publish(pub.engine, StockQuote{StockObvent{Company: "x"}})
		time.Sleep(500 * time.Microsecond)
	}
	<-done
	_ = wrong.Load() // racing deliveries around the edge are tolerated; the test asserts liveness
}

// TestDeliverySetEquivalenceAcrossPlacements is the routing plane's
// transparency property test: under interleaved subscription churn and
// netsim partitions/heals, the exact set of (subscription, event)
// deliveries with publisher-side routing (AtPublisher + routing.Table)
// must equal the subscriber-side baseline — and both must equal the
// locally computed expectation. Filter placement is an optimization,
// never a semantic change.
func TestDeliverySetEquivalenceAcrossPlacements(t *testing.T) {
	type wave struct {
		partitioned bool // published while {0,1} | {2,3} are split
	}
	run := func(placement Placement) map[string]bool {
		net := netsim.New(netsim.Config{Seed: 21})
		defer net.Close()
		cfg := fastCfg()
		cfg.Placement = placement
		nodes := newDomain(t, net, 4, cfg)
		pub := nodes[0]
		rng := rand.New(rand.NewSource(1234))

		var mu sync.Mutex
		got := make(map[string]bool) // "label@event"
		type subState struct {
			label  string
			node   int
			sub    *core.Subscription
			pred   func(StockQuote) bool
			active bool
		}
		var subs []*subState
		for n := 1; n <= 3; n++ {
			for j := 0; j < 4; j++ {
				st := &subState{label: fmt.Sprintf("n%d-s%d", n, j), node: n}
				var f *filter.Expr
				switch j % 3 {
				case 0:
					th := float64(rng.Intn(900) + 50)
					f = filter.Path("GetPrice").Lt(filter.Float(th))
					st.pred = func(q StockQuote) bool { return q.Price < th }
				case 1: // filterless
					st.pred = func(StockQuote) bool { return true }
				default:
					th := float64(rng.Intn(900) + 50)
					f = filter.Or(
						filter.Path("GetPrice").Ge(filter.Float(th)),
						filter.Path("GetCompany").Contains(filter.Str("Tel")),
					)
					st.pred = func(q StockQuote) bool {
						return q.Price >= th || strings.Contains(q.Company, "Tel")
					}
				}
				label := st.label
				s, err := core.Subscribe(nodes[n].engine, f, func(q StockQuote) {
					mu.Lock()
					got[label+"@"+q.Company] = true
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				st.sub = s
				subs = append(subs, st)
			}
		}

		expected := make(map[string]bool)
		waves := []wave{{false}, {true}, {false}, {true}, {false}}
		for w, cfgW := range waves {
			// Churn while fully connected: toggle a random subset.
			for _, st := range subs {
				if rng.Intn(2) == 0 {
					continue
				}
				if st.active {
					if err := st.sub.Deactivate(); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := st.sub.Activate(); err != nil {
						t.Fatal(err)
					}
				}
				st.active = !st.active
			}
			// Converge: the publisher must know exactly the active set
			// before the wave, so routing decisions are deterministic.
			activeCount := 0
			for _, st := range subs {
				if st.active {
					activeCount++
				}
			}
			waitFor(t, 10*time.Second, fmt.Sprintf("wave %d ad convergence", w), func() bool {
				return pub.node.RemoteSubscriptionCount() == activeCount
			})
			net.Settle()

			if cfgW.partitioned {
				net.Partition([]string{"node-0", "node-1"}, []string{"node-2", "node-3"})
			}
			waveExpected := make(map[string]bool)
			for e := 0; e < 6; e++ {
				q := StockQuote{StockObvent{
					Company: fmt.Sprintf("w%d-e%d-%s", w, e, []string{"Telco", "Acme"}[rng.Intn(2)]),
					Price:   float64(rng.Intn(1000)),
					Amount:  1 + rng.Intn(5),
				}}
				if err := core.Publish(pub.engine, q); err != nil {
					t.Fatal(err)
				}
				for _, st := range subs {
					if !st.active || !st.pred(q) {
						continue
					}
					if cfgW.partitioned && st.node != 1 {
						continue // unreachable: best-effort events are lost
					}
					waveExpected[st.label+"@"+q.Company] = true
				}
			}
			waitFor(t, 10*time.Second, fmt.Sprintf("wave %d deliveries", w), func() bool {
				mu.Lock()
				defer mu.Unlock()
				for k := range waveExpected {
					if !got[k] {
						return false
					}
				}
				return true
			})
			for k := range waveExpected {
				expected[k] = true
			}
			if cfgW.partitioned {
				net.Heal()
			}
			net.Settle()
		}

		mu.Lock()
		defer mu.Unlock()
		if len(got) != len(expected) {
			for k := range got {
				if !expected[k] {
					t.Errorf("placement %v: unexpected delivery %s", placement, k)
				}
			}
			for k := range expected {
				if !got[k] {
					t.Errorf("placement %v: missing delivery %s", placement, k)
				}
			}
		}
		out := make(map[string]bool, len(got))
		for k := range got {
			out[k] = true
		}
		return out
	}

	atSub := run(AtSubscriber)
	atPub := run(AtPublisher)
	if len(atSub) == 0 {
		t.Fatal("baseline run delivered nothing; workload broken")
	}
	for k := range atSub {
		if !atPub[k] {
			t.Errorf("delivered at-subscriber but not at-publisher: %s", k)
		}
	}
	for k := range atPub {
		if !atSub[k] {
			t.Errorf("delivered at-publisher but not at-subscriber: %s", k)
		}
	}
}
