package dace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/netsim"
)

func TestCertifiedClassDeliversAfterPartitionHeals(t *testing.T) {
	// Time decoupling under failure: a certified obvent published while
	// the subscriber is unreachable arrives once the partition heals
	// (§3.1.2: the notifiable "will eventually deliver the obvent").
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var got atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(q certTrade) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)

	net.Partition([]string{"node-0"}, []string{"node-1"})
	_ = core.Publish(pub.engine, certTrade{N: 1})
	time.Sleep(40 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("delivery across a partition")
	}

	net.Heal()
	waitFor(t, 10*time.Second, "delivery after heal", func() bool { return got.Load() == 1 })
}

func TestObventGlobalUniquenessAcrossNodes(t *testing.T) {
	// §2.1.2 Obvent Global Uniqueness: notifiables in different address
	// spaces receive distinct clones; mutating one subscriber's copy is
	// never visible to another.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())

	type seen struct {
		mu   sync.Mutex
		vals []string
	}
	var s1, s2 seen
	subOne, err := core.Subscribe(nodes[1].engine, nil, func(q StockQuote) {
		q.Company = "mutated-by-1" // mutate the local clone
		s1.mu.Lock()
		s1.vals = append(s1.vals, q.Company)
		s1.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = subOne.Activate()
	subTwo, err := core.Subscribe(nodes[2].engine, nil, func(q StockQuote) {
		s2.mu.Lock()
		s2.vals = append(s2.vals, q.Company)
		s2.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = subTwo.Activate()
	waitAds(t, nodes[0].node, 2)

	orig := StockQuote{StockObvent{Company: "original"}}
	_ = core.Publish(nodes[0].engine, orig)
	waitFor(t, 5*time.Second, "both deliveries", func() bool {
		s1.mu.Lock()
		n1 := len(s1.vals)
		s1.mu.Unlock()
		s2.mu.Lock()
		n2 := len(s2.vals)
		s2.mu.Unlock()
		return n1 == 1 && n2 == 1
	})
	s2.mu.Lock()
	defer s2.mu.Unlock()
	if s2.vals[0] != "original" {
		t.Fatalf("subscriber 2 observed %q: clones are shared across address spaces", s2.vals[0])
	}
	if orig.Company != "original" {
		t.Fatal("publisher's template mutated")
	}
}

func TestSubscriptionChangedWhileTrafficFlows(t *testing.T) {
	// Activations/deactivations interleaved with publications never
	// crash, deadlock or deliver to inactive subscriptions.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var active atomic.Bool
	var wrong atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(q StockQuote) {
		if !active.Load() {
			wrong.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			active.Store(true)
			if err := s.Activate(); err != nil {
				t.Errorf("activate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			// Note: deliveries already queued may still land just
			// after deactivation is requested — the engine's check is
			// at dispatch time. Give in-flight dispatch a beat.
			if err := s.Deactivate(); err != nil {
				t.Errorf("deactivate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			active.Store(false)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = core.Publish(pub.engine, StockQuote{StockObvent{Company: "x"}})
		time.Sleep(500 * time.Microsecond)
	}
	<-done
	_ = wrong.Load() // racing deliveries around the edge are tolerated; the test asserts liveness
}
