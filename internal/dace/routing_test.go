package dace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// TestPublisherRoutingOneCompoundEvalPerEvent pins the routing plane's
// core bargain: with Placement AtPublisher, publishing an unordered
// event costs exactly one compound evaluation for its class, no matter
// how many remote subscriptions are advertised.
func TestPublisherRoutingOneCompoundEvalPerEvent(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	cfg := fastCfg()
	cfg.Placement = AtPublisher
	nodes := newDomain(t, net, 3, cfg)
	pub, subA, subB := nodes[0], nodes[1], nodes[2]

	const perNode = 40
	var got atomic.Int32
	for i, sn := range []*testNode{subA, subB} {
		for j := 0; j < perNode; j++ {
			threshold := float64((j + 1) * 25)
			f := filter.Path("GetPrice").Lt(filter.Float(threshold))
			s, err := core.Subscribe(sn.engine, f, func(q StockQuote) { got.Add(1) })
			if err != nil {
				t.Fatalf("node %d sub %d: %v", i, j, err)
			}
			if err := s.Activate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitAds(t, pub.node, 2*perNode)

	const events = 5
	for i := 0; i < events; i++ {
		if err := core.Publish(pub.engine, StockQuote{StockObvent{Company: "T", Price: 500}}); err != nil {
			t.Fatal(err)
		}
	}
	// Price 500 passes thresholds 525..1000: 20 subs per node.
	waitFor(t, 10*time.Second, "filtered deliveries", func() bool {
		return got.Load() == int32(events*2*20)
	})

	class := obvent.TypeName(obvent.TypeOf[StockQuote]())
	st, ok := pub.node.RoutingStatsByClass()[class]
	if !ok {
		names := make([]string, 0)
		for k := range pub.node.RoutingStatsByClass() {
			names = append(names, k)
		}
		t.Fatalf("no routing stats for %q (have %v)", class, names)
	}
	if st.EventsRouted != events {
		t.Errorf("EventsRouted = %d, want %d", st.EventsRouted, events)
	}
	if st.CompoundEvals != events {
		t.Errorf("CompoundEvals = %d for %d events over %d remote subscriptions, want %d",
			st.CompoundEvals, events, 2*perNode, events)
	}
	if st.FallbackEvals != 0 {
		t.Errorf("FallbackEvals = %d, want 0", st.FallbackEvals)
	}
}

// TestCorruptOrSlowAdCannotStallPublish is the regression test for the
// control-plane locking discipline: advertisement decoding happens
// outside the node mutex, so a flood of corrupt and of huge (slow to
// decode) advertisements must not stall PublishEnvelope or delivery.
func TestCorruptOrSlowAdCannotStallPublish(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	cfg := fastCfg()
	cfg.Placement = AtPublisher
	nodes := newDomain(t, net, 2, cfg)
	pub, sub := nodes[0], nodes[1]

	var got atomic.Int32
	f := filter.Path("GetPrice").Lt(filter.Float(100))
	s, err := core.Subscribe(sub.engine, f, func(q StockQuote) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)

	// An interloper floods the control channel with corrupt payloads
	// and with huge, slow-to-decode (but well-formed) advertisements of
	// types nobody conforms to.
	ep, err := net.NewEndpoint("evil")
	if err != nil {
		t.Fatal(err)
	}
	mux := multicast.NewMux(ep)
	ctrl := multicast.NewReliable(mux, "dace/ctrl", func(string, []byte) {}, fastCfg().Multicast)
	defer ctrl.Close()
	ctrl.SetMembers([]string{"node-0", "node-1", "evil"})

	bigFilter, err := filter.MarshalCanonical(filter.And(
		filter.Path("GetPrice").Lt(filter.Float(10)),
		filter.Path("GetCompany").Contains(filter.Str("nobody")),
	))
	if err != nil {
		t.Fatal(err)
	}
	hugeSubs := make([]core.SubscriptionInfo, 2000)
	for i := range hugeSubs {
		hugeSubs[i] = core.SubscriptionInfo{
			ID:       fmt.Sprintf("evil/sub-%04d", i),
			TypeName: "no.such.Type",
			Filter:   bigFilter,
		}
	}
	stop := make(chan struct{})
	var flood sync.WaitGroup
	flood.Add(1)
	go func() {
		defer flood.Done()
		seq := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				_ = ctrl.Broadcast([]byte("\xff\x00this is not a gob stream\x13\x37"))
				continue
			}
			seq++
			ad := subscriptionAd{Node: "evil", Seq: seq, Ver: adSchemaVersion, Subs: hugeSubs}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(ad); err != nil {
				return
			}
			_ = ctrl.Broadcast(buf.Bytes())
		}
	}()

	// Publishing must make progress while the flood is in flight.
	const events = 50
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; i < events; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("publish loop stalled at event %d under ad flood", i)
		}
		if err := core.Publish(pub.engine, StockQuote{StockObvent{Company: "T", Price: 50}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 20*time.Second, "deliveries under ad flood", func() bool {
		return got.Load() == events
	})
	close(stop)
	flood.Wait()
}

// adObserver records decoded control-channel advertisements from one
// origin node.
type adObserver struct {
	mu  sync.Mutex
	ads []subscriptionAd
}

func (o *adObserver) onControl(_ string, payload []byte) {
	var ad subscriptionAd
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ad); err != nil {
		return
	}
	o.mu.Lock()
	o.ads = append(o.ads, ad)
	o.mu.Unlock()
}

func (o *adObserver) from(node string) []subscriptionAd {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []subscriptionAd
	for _, ad := range o.ads {
		if ad.Node == node {
			out = append(out, ad)
		}
	}
	return out
}

// introduceObserver broadcasts one empty v1 snapshot for the observer
// and waits until node n has witnessed it: deltas only flow once every
// peer is known to speak the delta schema, so a silent control-channel
// member would otherwise pin the domain to snapshots.
func introduceObserver(t *testing.T, ctrl *multicast.Reliable, n *Node) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(subscriptionAd{Node: "observer", Seq: 1, Ver: adSchemaVersion}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Broadcast(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// The node sends deltas only once every peer (the observer included)
	// has been witnessed at the delta-capable schema version; wait for
	// that state so the tests below exercise deltas deterministically.
	waitFor(t, 5*time.Second, "all peers witnessed as delta-capable", func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.allPeersSpeakDeltasLocked()
	})
}

// TestDeltaAdvertisementsOnTheWire pins the wire protocol: the first
// advertisement is a versioned full snapshot, subsequent small changes
// travel as deltas (adds and removals by subscription ID), and the
// receiving node reconciles them to the same state a snapshot would
// give.
func TestDeltaAdvertisementsOnTheWire(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	// An observer on the control channel: it records the ad stream and
	// advertises exactly once (introduceObserver) so the nodes treat it
	// as a delta-capable peer.
	ep, err := net.NewEndpoint("observer")
	if err != nil {
		t.Fatal(err)
	}
	mux := multicast.NewMux(ep)
	obs := &adObserver{}
	ctrl := multicast.NewReliable(mux, "dace/ctrl", obs.onControl, fastCfg().Multicast)
	defer ctrl.Close()
	peers := []string{"node-0", "node-1", "observer"}
	ctrl.SetMembers(peers)
	pub.node.SetPeers(peers)
	sub.node.SetPeers(peers)
	introduceObserver(t, ctrl, sub.node)

	var subsHeld []*core.Subscription
	for i := 0; i < 3; i++ {
		s, err := core.Subscribe(sub.engine, filter.Path("GetPrice").Lt(filter.Float(float64(100*(i+1)))), func(q StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(); err != nil {
			t.Fatal(err)
		}
		subsHeld = append(subsHeld, s)
	}
	waitAds(t, pub.node, 3)
	if err := subsHeld[1].Deactivate(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "removal propagated", func() bool {
		return pub.node.RemoteSubscriptionCount() == 2
	})

	waitFor(t, 5*time.Second, "observer saw the ad stream", func() bool {
		return len(obs.from("node-1")) >= 4
	})
	ads := obs.from("node-1")
	var sawSnapshot, sawDeltaAdd, sawDeltaRemove bool
	for _, ad := range ads {
		if ad.Ver != adSchemaVersion {
			t.Errorf("ad seq %d: Ver = %d, want %d", ad.Seq, ad.Ver, adSchemaVersion)
		}
		if !ad.Delta {
			sawSnapshot = true
			continue
		}
		if ad.BaseSeq != ad.Seq-1 {
			t.Errorf("delta seq %d has BaseSeq %d, want %d", ad.Seq, ad.BaseSeq, ad.Seq-1)
		}
		if len(ad.Subs) > 0 {
			sawDeltaAdd = true
		}
		if len(ad.Removed) > 0 {
			sawDeltaRemove = true
		}
	}
	if !sawSnapshot {
		t.Error("no full snapshot observed (first ad must be one)")
	}
	if !sawDeltaAdd {
		t.Error("no delta advertisement with additions observed")
	}
	if !sawDeltaRemove {
		t.Error("no delta advertisement with removals observed")
	}

	// Reconciled state must match reality: re-activate and check the
	// publisher converges to 3 again.
	if err := subsHeld[1].Activate(); err != nil {
		t.Fatal(err)
	}
	waitAds(t, pub.node, 3)
}

// TestSnapshotForcedAfterDeltaRun pins the resynchronization bound:
// after snapshotEvery consecutive deltas the next advertisement is a
// full snapshot again.
func TestSnapshotForcedAfterDeltaRun(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	sub := nodes[1]

	ep, err := net.NewEndpoint("observer")
	if err != nil {
		t.Fatal(err)
	}
	mux := multicast.NewMux(ep)
	obs := &adObserver{}
	ctrl := multicast.NewReliable(mux, "dace/ctrl", obs.onControl, fastCfg().Multicast)
	defer ctrl.Close()
	peers := []string{"node-0", "node-1", "observer"}
	ctrl.SetMembers(peers)
	nodes[0].node.SetPeers(peers)
	sub.node.SetPeers(peers)
	introduceObserver(t, ctrl, sub.node)

	// A stable base of subscriptions keeps each toggle's diff small, so
	// the toggles below travel as deltas.
	for i := 0; i < 4; i++ {
		base, err := core.Subscribe(sub.engine, filter.Path("GetPrice").Lt(filter.Float(float64(50*(i+1)))), func(q StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := base.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := core.Subscribe(sub.engine, nil, func(q StockQuote) {})
	if err != nil {
		t.Fatal(err)
	}
	// Each toggle is one advertisement; drive well past snapshotEvery.
	for i := 0; i < 2*snapshotEvery; i++ {
		if i%2 == 0 {
			_ = s.Activate()
		} else {
			_ = s.Deactivate()
		}
	}
	var deltas, snapshotsAfterFirst int
	waitFor(t, 10*time.Second, "delta run and forced snapshot observed", func() bool {
		deltas, snapshotsAfterFirst = 0, 0
		for _, ad := range obs.from("node-1") {
			if ad.Delta {
				deltas++
			} else if ad.Seq > 1 {
				snapshotsAfterFirst++
			}
		}
		return deltas >= snapshotEvery && snapshotsAfterFirst >= 2
	})
	// Delta chains must link consecutively, and no run of consecutive
	// deltas (by sequence) may exceed the resynchronization bound.
	ads := obs.from("node-1")
	sort.Slice(ads, func(i, j int) bool { return ads[i].Seq < ads[j].Seq })
	run, prevSeq := 0, uint64(0)
	for _, ad := range ads {
		if ad.Delta && ad.BaseSeq != ad.Seq-1 {
			t.Errorf("delta seq %d has BaseSeq %d, want %d", ad.Seq, ad.BaseSeq, ad.Seq-1)
		}
		contiguous := prevSeq == 0 || ad.Seq == prevSeq+1
		if ad.Delta && contiguous {
			run++
			if run > snapshotEvery {
				t.Errorf("run of %d consecutive deltas exceeds snapshotEvery=%d", run, snapshotEvery)
			}
		} else {
			run = 0
		}
		prevSeq = ad.Seq
	}
}

// TestMembershipDepartureDropsRoutingState pins the SetPeers hook: a
// node removed from the domain membership must vanish from the routing
// table — no more events addressed to it, no certified deliveries owed,
// no pinned memory.
func TestMembershipDepartureDropsRoutingState(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())
	pub, keep, gone := nodes[0], nodes[1], nodes[2]

	for _, sn := range []*testNode{keep, gone} {
		s, err := core.Subscribe(sn.engine, nil, func(q StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	waitAds(t, pub.node, 2)

	// node-2 leaves the domain.
	pub.node.SetPeers([]string{"node-0", "node-1"})
	if got := pub.node.RemoteSubscriptionCount(); got != 1 {
		t.Errorf("RemoteSubscriptionCount after departure = %d, want 1", got)
	}
	if subs := pub.node.certSubscribersFor(obvent.TypeName(obvent.TypeOf[StockQuote]())); len(subs) != 1 {
		t.Errorf("cert subscribers after departure = %v, want only node-1's", subs)
	}
}
