package routing

import (
	"testing"
	"time"

	"govents/internal/core"
)

// TestExpireSilentDropsQuietNodes pins the ad-stream GC: a node whose
// last advertisement is older than the TTL is dropped (and stops being
// routed to), while recently heard-from and excluded nodes survive.
func TestExpireSilentDropsQuietNodes(t *testing.T) {
	tb := NewTable(newReg(t))
	now := time.Unix(1000, 0)
	tb.now = func() time.Time { return now }
	tb.SetAdTTL(time.Second)

	tb.ApplySnapshot("self", 1, []core.SubscriptionInfo{info(t, "s1", quoteClass(), nil)})
	tb.ApplySnapshot("quiet", 1, []core.SubscriptionInfo{info(t, "q1", quoteClass(), nil)})
	now = now.Add(600 * time.Millisecond)
	tb.ApplySnapshot("fresh", 1, []core.SubscriptionInfo{info(t, "f1", quoteClass(), nil)})

	// 1.2s after quiet's last ad; 600ms after fresh's and 1.2s after
	// self's — self is excluded (a node never expires itself).
	now = now.Add(600 * time.Millisecond)
	dropped := tb.ExpireSilent("self")
	if len(dropped) != 1 || dropped[0] != "quiet" {
		t.Fatalf("ExpireSilent dropped %v, want [quiet]", dropped)
	}
	dests := tb.NodesFor(quoteClass(), nil)
	if len(dests) != 2 || dests[0] != "fresh" || dests[1] != "self" {
		t.Fatalf("post-expiry destinations = %v, want [fresh self]", dests)
	}
	if st := tb.Stats(); st.NodesExpired != 1 {
		t.Fatalf("NodesExpired = %d, want 1", st.NodesExpired)
	}

	// A returning node re-enters as new (anti-entropy trigger).
	if res := tb.ApplySnapshot("quiet", 7, []core.SubscriptionInfo{info(t, "q1", quoteClass(), nil)}); !res.NewNode || !res.Applied {
		t.Fatalf("returning node result = %+v, want NewNode+Applied", res)
	}
	if got := tb.NodesFor(quoteClass(), nil); len(got) != 3 {
		t.Fatalf("destinations after return = %v, want 3 nodes", got)
	}
}

// TestExpireSilentDisabledWithoutTTL pins that expiry is opt-in.
func TestExpireSilentDisabledWithoutTTL(t *testing.T) {
	tb := NewTable(newReg(t))
	now := time.Unix(1000, 0)
	tb.now = func() time.Time { return now }
	tb.ApplySnapshot("a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	now = now.Add(24 * time.Hour)
	if dropped := tb.ExpireSilent(); dropped != nil {
		t.Fatalf("expiry without TTL dropped %v", dropped)
	}
}

// TestHeartbeatAdsDoNotInvalidatePlans pins the liveness-refresh path:
// snapshots and deltas that change nothing advance the node's sequence
// and refresh lastSeen without bumping the table generation, so
// compiled plans survive heartbeats.
func TestHeartbeatAdsDoNotInvalidatePlans(t *testing.T) {
	tb := NewTable(newReg(t))
	now := time.Unix(1000, 0)
	tb.now = func() time.Time { return now }
	tb.SetAdTTL(time.Second)

	subs := []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)}
	tb.ApplySnapshot("a", 1, subs)
	tb.NodesFor(quoteClass(), nil) // compile the plan
	gen := tb.gen.Load()

	// Identical snapshot (heartbeat): refresh, no invalidation.
	if res := tb.ApplySnapshot("a", 2, subs); res.Applied {
		t.Fatalf("heartbeat snapshot reported Applied")
	}
	// Empty delta (heartbeat): same.
	if res := tb.ApplyDelta("a", 3, 2, nil, nil); res.Applied {
		t.Fatalf("heartbeat delta reported Applied")
	}
	if g := tb.gen.Load(); g != gen {
		t.Fatalf("heartbeats bumped generation %d -> %d", gen, g)
	}
	st := tb.Stats()
	if st.AdsRefreshed != 2 {
		t.Fatalf("AdsRefreshed = %d, want 2", st.AdsRefreshed)
	}

	// Heartbeats kept the node alive: 0.9s after the last one, even
	// though the first ad is long past the TTL.
	now = now.Add(900 * time.Millisecond)
	if dropped := tb.ExpireSilent(); len(dropped) != 0 {
		t.Fatalf("live heartbeating node expired: %v", dropped)
	}

	// A real change still invalidates.
	if res := tb.ApplyDelta("a", 4, 3, []core.SubscriptionInfo{info(t, "a2", quoteClass(), nil)}, nil); !res.Applied {
		t.Fatalf("real delta not applied")
	}
	if g := tb.gen.Load(); g == gen {
		t.Fatalf("real delta did not bump generation")
	}
}
