package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/obvent"
)

// Test obvent hierarchy.

type stockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

func (s stockObvent) GetCompany() string { return s.Company }
func (s stockObvent) GetPrice() float64  { return s.Price }

type stockQuote struct {
	stockObvent
}

type otherObvent struct {
	obvent.Base
	N int
}

// flatQuote declares Price directly (not promoted through embedding):
// reflect resolves direct fields without allocating, so the alloc-pin
// test measures the routing plane, not reflect's promoted-field path.
type flatQuote struct {
	obvent.Base
	Company string
	Price   float64
}

func newReg(t testing.TB) *obvent.Registry {
	t.Helper()
	reg := obvent.NewRegistry()
	reg.MustRegister(stockObvent{})
	reg.MustRegister(stockQuote{})
	reg.MustRegister(otherObvent{})
	return reg
}

func quoteClass() string { return obvent.TypeName(obvent.TypeOf[stockQuote]()) }
func stockClass() string { return obvent.TypeName(obvent.TypeOf[stockObvent]()) }

// info builds a SubscriptionInfo with an optional filter.
func info(t testing.TB, id, typeName string, f *filter.Expr) core.SubscriptionInfo {
	t.Helper()
	si := core.SubscriptionInfo{ID: id, TypeName: typeName}
	if f != nil {
		data, err := filter.MarshalCanonical(f)
		if err != nil {
			t.Fatal(err)
		}
		si.Filter = data
	}
	return si
}

func priceLt(v float64) *filter.Expr { return filter.Path("GetPrice").Lt(filter.Float(v)) }

func dests(t *Table, class string, ev any) []string {
	return t.Destinations(class, func() any { return ev }, nil)
}

func TestSnapshotRoutesByFilter(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), priceLt(100))})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), priceLt(500))})
	tb.ApplySnapshot("node-c", 1, []core.SubscriptionInfo{info(t, "c1", quoteClass(), nil)})

	cheap := stockQuote{stockObvent{Price: 50}}
	mid := stockQuote{stockObvent{Price: 300}}
	dear := stockQuote{stockObvent{Price: 900}}
	if got := dests(tb, quoteClass(), cheap); !reflect.DeepEqual(got, []string{"node-a", "node-b", "node-c"}) {
		t.Errorf("cheap: %v", got)
	}
	if got := dests(tb, quoteClass(), mid); !reflect.DeepEqual(got, []string{"node-b", "node-c"}) {
		t.Errorf("mid: %v", got)
	}
	if got := dests(tb, quoteClass(), dear); !reflect.DeepEqual(got, []string{"node-c"}) {
		t.Errorf("dear: %v", got)
	}
}

func TestConformanceExpandsToSupertypeSubscriptions(t *testing.T) {
	tb := NewTable(newReg(t))
	// node-a subscribes to the base type; a published subtype must route
	// to it.
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", stockClass(), nil)})
	if got := dests(tb, quoteClass(), stockQuote{}); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Errorf("subtype routing: %v", got)
	}
	// The reverse does not hold: a base-class event does not conform to
	// a subtype subscription.
	tb2 := NewTable(newReg(t))
	tb2.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	if got := dests(tb2, stockClass(), stockObvent{}); len(got) != 0 {
		t.Errorf("base class routed to subtype subscription: %v", got)
	}
}

func TestFilterlessSubscriptionShortCircuitsNode(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{
		info(t, "a1", quoteClass(), priceLt(10)), // would reject
		info(t, "a2", quoteClass(), nil),         // filterless: node always matches
	})
	ev := stockQuote{stockObvent{Price: 999}}
	if got := dests(tb, quoteClass(), ev); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Errorf("Destinations = %v", got)
	}
	// The short-circuited node must not even cost a compound evaluation.
	st := tb.ClassStats(quoteClass())
	if st.CompoundEvals != 0 {
		t.Errorf("CompoundEvals = %d for an always-match-only plan", st.CompoundEvals)
	}
}

func TestSnapshotIdempotentAndNewestWins(t *testing.T) {
	tb := NewTable(newReg(t))
	subs2 := []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)}
	if res := tb.ApplySnapshot("node-a", 2, subs2); !res.Applied || !res.NewNode {
		t.Fatalf("first snapshot: %+v", res)
	}
	// A stale snapshot (older seq) must not regress the state.
	if res := tb.ApplySnapshot("node-a", 1, nil); res.Applied || res.NewNode {
		t.Fatalf("stale snapshot applied: %+v", res)
	}
	if got := dests(tb, quoteClass(), stockQuote{}); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Errorf("state regressed: %v", got)
	}
	// Re-applying the same seq is a no-op.
	if res := tb.ApplySnapshot("node-a", 2, nil); res.Applied {
		t.Fatalf("duplicate snapshot applied: %+v", res)
	}
	if tb.Stats().AdsStale != 2 {
		t.Errorf("AdsStale = %d, want 2", tb.Stats().AdsStale)
	}
}

func TestDeltaChainsInAndOutOfOrder(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})

	// Delta 3 (base 2) arrives before delta 2 (base 1): parked.
	if res := tb.ApplyDelta("node-a", 3, 2, nil, []string{"a2"}); !res.Deferred || res.Applied {
		t.Fatalf("out-of-order delta: %+v", res)
	}
	if got := tb.SubscriptionCount(""); got != 1 {
		t.Fatalf("parked delta mutated state: %d subs", got)
	}
	// Delta 2 closes the chain; both apply.
	if res := tb.ApplyDelta("node-a", 2, 1, []core.SubscriptionInfo{info(t, "a2", quoteClass(), nil), info(t, "a3", quoteClass(), nil)}, nil); !res.Applied {
		t.Fatalf("chaining delta: %+v", res)
	}
	// a2 added by delta 2, removed by delta 3; a1 and a3 remain.
	if got := tb.SubscriptionCount(""); got != 2 {
		t.Errorf("after chain: %d subs, want 2", got)
	}
	st := tb.Stats()
	if st.AdsApplied != 3 || st.AdsDeferred != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeltaBeforeSnapshotIsParked(t *testing.T) {
	tb := NewTable(newReg(t))
	// A delta from a never-seen node cannot apply (no base) but marks
	// the node as witnessed.
	res := tb.ApplyDelta("node-a", 2, 1, []core.SubscriptionInfo{info(t, "a2", quoteClass(), nil)}, nil)
	if !res.Deferred || !res.NewNode || res.Applied {
		t.Fatalf("delta before snapshot: %+v", res)
	}
	if got := dests(tb, quoteClass(), stockQuote{}); len(got) != 0 {
		t.Fatalf("unbased delta routed: %v", got)
	}
	// The base snapshot arrives late; the parked delta drains onto it.
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	if got := tb.SubscriptionCount(""); got != 2 {
		t.Errorf("after snapshot+drain: %d subs, want 2", got)
	}
}

func TestSnapshotOvertakesParkedDeltas(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	tb.ApplyDelta("node-a", 3, 2, []core.SubscriptionInfo{info(t, "a3", quoteClass(), nil)}, nil)
	// A full snapshot at seq 4 overtakes the parked chain; the stale
	// delta must be dropped, not applied on top.
	tb.ApplySnapshot("node-a", 4, []core.SubscriptionInfo{info(t, "a9", quoteClass(), nil)})
	tb.ApplyDelta("node-a", 5, 4, nil, []string{"a9"})
	if got := tb.SubscriptionCount(""); got != 0 {
		t.Errorf("after overtaking snapshot: %d subs, want 0", got)
	}
}

func TestRemoveNode(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), nil)})
	if got := dests(tb, quoteClass(), stockQuote{}); len(got) != 2 {
		t.Fatalf("before removal: %v", got)
	}
	tb.RemoveNode("node-a")
	if got := dests(tb, quoteClass(), stockQuote{}); !reflect.DeepEqual(got, []string{"node-b"}) {
		t.Errorf("after removal: %v", got)
	}
}

func TestFailOpenOnUndecodableEvent(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), priceLt(10))})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), nil)})
	got := tb.Destinations(quoteClass(), func() any { return nil }, nil)
	if !reflect.DeepEqual(got, []string{"node-a", "node-b"}) {
		t.Errorf("fail-open destinations = %v", got)
	}
	st := tb.ClassStats(quoteClass())
	if st.FallbackEvals != 1 || st.CompoundEvals != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnparsableFilterFailsOpen(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{{ID: "a1", TypeName: quoteClass(), Filter: []byte("not a filter")}})
	if got := dests(tb, quoteClass(), stockQuote{stockObvent{Price: 999}}); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Errorf("unparsable filter should fail open to the node: %v", got)
	}
}

func TestOneCompoundEvalPerEventRegardlessOfSubCount(t *testing.T) {
	tb := NewTable(newReg(t))
	const nodes, per = 8, 50
	for n := 0; n < nodes; n++ {
		var subs []core.SubscriptionInfo
		for i := 0; i < per; i++ {
			id := fmt.Sprintf("n%d-s%03d", n, i)
			subs = append(subs, info(t, id, quoteClass(), priceLt(float64((i+1)*20))))
		}
		tb.ApplySnapshot(fmt.Sprintf("node-%d", n), 1, subs)
	}
	ev := stockQuote{stockObvent{Price: 500}}
	for i := 0; i < 10; i++ {
		dests(tb, quoteClass(), ev)
	}
	st := tb.ClassStats(quoteClass())
	if st.CompoundEvals != 10 {
		t.Errorf("CompoundEvals = %d for 10 events over %d subscriptions, want 10", st.CompoundEvals, nodes*per)
	}
	if st.EventsRouted != 10 {
		t.Errorf("EventsRouted = %d, want 10", st.EventsRouted)
	}
	if st.PlansCompiled != 1 {
		t.Errorf("PlansCompiled = %d, want 1 (no ads between events)", st.PlansCompiled)
	}
}

func TestPlanInvalidationOnAdAndRegistryChange(t *testing.T) {
	reg := newReg(t)
	tb := NewTable(reg)
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	ev := stockQuote{}
	dests(tb, quoteClass(), ev)
	if st := tb.ClassStats(quoteClass()); st.PlansCompiled != 1 {
		t.Fatalf("PlansCompiled = %d", st.PlansCompiled)
	}
	// A new ad invalidates the plan...
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), nil)})
	if got := dests(tb, quoteClass(), ev); !reflect.DeepEqual(got, []string{"node-a", "node-b"}) {
		t.Errorf("after new ad: %v", got)
	}
	if st := tb.ClassStats(quoteClass()); st.PlansCompiled != 2 {
		t.Errorf("PlansCompiled = %d after ad, want 2", st.PlansCompiled)
	}
	// ...and so does a registry registration (conformance may widen).
	type lateQuote struct{ stockQuote }
	reg.MustRegister(lateQuote{})
	dests(tb, quoteClass(), ev)
	if st := tb.ClassStats(quoteClass()); st.PlansCompiled != 3 {
		t.Errorf("PlansCompiled = %d after registration, want 3", st.PlansCompiled)
	}
}

func TestNodesPrunedCounter(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), priceLt(100))})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), priceLt(100))})
	dests(tb, quoteClass(), stockQuote{stockObvent{Price: 500}}) // both pruned
	dests(tb, quoteClass(), stockQuote{stockObvent{Price: 50}})  // none pruned
	if st := tb.ClassStats(quoteClass()); st.NodesPruned != 2 {
		t.Errorf("NodesPruned = %d, want 2", st.NodesPruned)
	}
}

func TestNodesForIgnoresFilters(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), priceLt(1))})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b1", quoteClass(), nil)})
	tb.ApplySnapshot("node-c", 1, []core.SubscriptionInfo{info(t, "c1", stockClass(), priceLt(1))})
	if got := tb.NodesFor(quoteClass(), nil); !reflect.DeepEqual(got, []string{"node-a", "node-b", "node-c"}) {
		t.Errorf("NodesFor = %v", got)
	}
	if got := tb.NodesFor(obvent.TypeName(obvent.TypeOf[otherObvent]()), nil); len(got) != 0 {
		t.Errorf("NodesFor unrelated class = %v", got)
	}
}

func TestForEachConforming(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{
		info(t, "a1", quoteClass(), nil),
		info(t, "a2", stockClass(), nil),
	})
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{
		{ID: "b1", TypeName: obvent.TypeName(obvent.TypeOf[otherObvent]()), DurableID: "dur-b"},
	})
	var got []string
	tb.ForEachConforming(quoteClass(), func(node string, inf core.SubscriptionInfo) {
		got = append(got, node+"/"+inf.ID)
	})
	want := map[string]bool{"node-a/a1": true, "node-a/a2": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("ForEachConforming = %v", got)
	}
}

// TestDestinationsEquivalenceProperty checks the compound routing
// decision against the per-entry oracle across randomized tables.
func TestDestinationsEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 60; round++ {
		tb := NewTable(newReg(t))
		nNodes := 1 + rng.Intn(5)
		for n := 0; n < nNodes; n++ {
			var subs []core.SubscriptionInfo
			for i := 0; i < rng.Intn(6); i++ {
				id := fmt.Sprintf("n%d-s%d", n, i)
				typeName := quoteClass()
				if rng.Intn(3) == 0 {
					typeName = stockClass()
				}
				var f *filter.Expr
				switch rng.Intn(5) {
				case 0: // filterless
				case 1:
					f = priceLt(float64(rng.Intn(1000)))
				case 2:
					f = filter.And(priceLt(float64(rng.Intn(1000))), filter.Path("GetCompany").Contains(filter.Str("Tel")))
				case 3:
					// Unevaluable path: exercises node-level fail-open.
					f = filter.Or(filter.Path("Ghost").Eq(filter.Int(1)), priceLt(float64(rng.Intn(500))))
				default:
					f = filter.Or(priceLt(float64(rng.Intn(500))), filter.Path("Amount").Ge(filter.Int(int64(rng.Intn(10)))))
				}
				subs = append(subs, info(t, id, typeName, f))
			}
			tb.ApplySnapshot(fmt.Sprintf("node-%d", n), 1, subs)
		}
		for e := 0; e < 10; e++ {
			ev := stockQuote{stockObvent{
				Company: []string{"Telco Mobiles", "Acme", "Telstar"}[rng.Intn(3)],
				Price:   float64(rng.Intn(1000)),
				Amount:  rng.Intn(12),
			}}
			got := dests(tb, quoteClass(), ev)
			want := tb.DestinationsNaive(quoteClass(), ev)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d event %+v: compound %v, per-entry %v", round, ev, got, want)
			}
		}
	}
}

func TestDestinationsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	reg := obvent.NewRegistry()
	reg.MustRegister(flatQuote{})
	class := obvent.TypeName(obvent.TypeOf[flatQuote]())
	tb := NewTable(reg)
	for n := 0; n < 16; n++ {
		var subs []core.SubscriptionInfo
		for i := 0; i < 16; i++ {
			// Field path, not accessor method: compiled field programs
			// resolve with zero allocations, while a method segment
			// still pays its reflect Call; this test pins the routing
			// plane's own allocations.
			f := filter.Path("Price").Lt(filter.Float(float64((i + 1) * 60)))
			subs = append(subs, info(t, fmt.Sprintf("n%d-s%d", n, i), class, f))
		}
		tb.ApplySnapshot(fmt.Sprintf("node-%02d", n), 1, subs)
	}
	var ev any = flatQuote{Company: "Telco", Price: 400}
	decode := func() any { return ev }
	buf := make([]string, 0, 32)
	buf = tb.Destinations(class, decode, buf[:0]) // warm plan + pools
	allocs := testing.AllocsPerRun(200, func() {
		buf = tb.Destinations(class, decode, buf[:0])
	})
	if allocs > 0 {
		t.Errorf("steady-state Destinations allocates %.1f objects/op, want 0", allocs)
	}
	if len(buf) == 0 {
		t.Fatal("no destinations matched; workload broken")
	}
}

// TestErroringFilterFailsOpenAtNodeLevel guards the per-subscription
// fail-open semantics through the per-node Or: a subscription whose
// filter cannot evaluate against the event must not suppress the node,
// neither alone nor by poisoning a sibling subscription's disjunct.
func TestErroringFilterFailsOpenAtNodeLevel(t *testing.T) {
	tb := NewTable(newReg(t))
	errFilter := filter.Path("NoSuchAccessor").Lt(filter.Float(1))
	// node-a: an erroring filter next to a passing one ("a0" sorts
	// before "a1", so the error term leads the Or).
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{
		info(t, "a0", quoteClass(), errFilter),
		info(t, "a1", quoteClass(), priceLt(100)),
	})
	// node-b: only an erroring filter.
	tb.ApplySnapshot("node-b", 1, []core.SubscriptionInfo{info(t, "b0", quoteClass(), errFilter)})
	// node-c: only a rejecting filter.
	tb.ApplySnapshot("node-c", 1, []core.SubscriptionInfo{info(t, "c0", quoteClass(), priceLt(1))})

	ev := stockQuote{stockObvent{Price: 50}}
	got := dests(tb, quoteClass(), ev)
	want := tb.DestinationsNaive(quoteClass(), ev)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("compound %v, per-entry oracle %v", got, want)
	}
	if !reflect.DeepEqual(got, []string{"node-a", "node-b"}) {
		t.Errorf("Destinations = %v, want [node-a node-b]", got)
	}
}

func TestPendingDeltasBounded(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	// A hostile peer parks deltas under bases that never close.
	for i := uint64(0); i < 500; i++ {
		tb.ApplyDelta("node-a", 1000+i, 900+i, []core.SubscriptionInfo{info(t, "x", quoteClass(), nil)}, nil)
	}
	tb.mu.Lock()
	pending := len(tb.nodes["node-a"].pending)
	tb.mu.Unlock()
	if pending > maxPendingDeltas {
		t.Errorf("pending deltas = %d, want <= %d", pending, maxPendingDeltas)
	}
	// Applied state is untouched and the table still routes.
	if got := tb.SubscriptionCount(""); got != 1 {
		t.Errorf("SubscriptionCount = %d, want 1", got)
	}
}

// TestRoutingStatsAccessorPrograms pins the routing plane's view of the
// compile step: class plans' compound matchers compile accessor
// programs on first event sight, surfaced through Table.Stats.
func TestRoutingStatsAccessorPrograms(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(flatQuote{})
	class := obvent.TypeName(obvent.TypeOf[flatQuote]())
	tb := NewTable(reg)
	var subs []core.SubscriptionInfo
	for i := 0; i < 4; i++ {
		f := filter.Path("Price").Lt(filter.Float(float64((i + 1) * 100)))
		subs = append(subs, info(t, fmt.Sprintf("s%d", i), class, f))
	}
	tb.ApplySnapshot("node-a", 1, subs)

	if st := tb.Stats(); st.AccessorPrograms != 0 {
		t.Errorf("AccessorPrograms = %d before any event, want 0 (compiled on first sight)", st.AccessorPrograms)
	}
	var ev any = flatQuote{Company: "Telco", Price: 50}
	decode := func() any { return ev }
	if dests := tb.Destinations(class, decode, nil); len(dests) != 1 {
		t.Fatalf("Destinations = %v, want node-a", dests)
	}
	st := tb.Stats()
	if st.AccessorPrograms != 1 {
		t.Errorf("AccessorPrograms = %d, want 1 (one unique path, one event type)", st.AccessorPrograms)
	}
	if st.AccessorFallbacks != 0 {
		t.Errorf("AccessorFallbacks = %d, want 0", st.AccessorFallbacks)
	}
}

// TestPerClassStatsFoldAccessorCounters pins the per-class breakout of
// the accessor counters: ClassStats and StatsByClass must report the
// same compile counts the aggregate Stats folds from the class plan.
func TestPerClassStatsFoldAccessorCounters(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(flatQuote{})
	class := obvent.TypeName(obvent.TypeOf[flatQuote]())
	tb := NewTable(reg)
	tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{
		info(t, "s0", class, filter.Path("Price").Lt(filter.Float(100))),
	})
	var ev any = flatQuote{Company: "Telco", Price: 50}
	if dests := tb.Destinations(class, func() any { return ev }, nil); len(dests) != 1 {
		t.Fatalf("Destinations = %v", dests)
	}
	if got := tb.ClassStats(class).AccessorPrograms; got != 1 {
		t.Errorf("ClassStats.AccessorPrograms = %d, want 1", got)
	}
	if got := tb.StatsByClass()[class].AccessorPrograms; got != 1 {
		t.Errorf("StatsByClass.AccessorPrograms = %d, want 1", got)
	}
}
