package routing

import (
	"reflect"
	"testing"

	"govents/internal/core"
)

// A restarted node's ad sequence restarts at 1; without epochs its
// fresh snapshots would be stale-rejected against the dead
// incarnation's high sequence forever (and the rejected ads would keep
// refreshing lastSeen, defeating TTL expiry too).
func TestNoteEpochRebirthResetsSequence(t *testing.T) {
	tb := NewTable(newReg(t))

	// First life: epoch 100, advances to seq 7.
	if !tb.NoteEpoch("node-a", 100) {
		t.Fatal("first epoch rejected")
	}
	tb.ApplySnapshot("node-a", 7, []core.SubscriptionInfo{info(t, "a1", quoteClass(), nil)})
	if got := dests(tb, quoteClass(), stockQuote{}); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Fatalf("first life not routed: %v", got)
	}

	// Rebirth: higher epoch, sequence restarts at 1 with new subs.
	if !tb.NoteEpoch("node-a", 200) {
		t.Fatal("rebirth epoch rejected")
	}
	res := tb.ApplySnapshot("node-a", 1, []core.SubscriptionInfo{info(t, "a2", stockClass(), nil)})
	if !res.Applied {
		t.Fatal("reborn node's seq-1 snapshot was stale-rejected")
	}
	if !res.NewNode {
		t.Fatal("rebirth not seen as a new node (anti-entropy would not fire)")
	}
	if got := dests(tb, stockClass(), stockObvent{}); !reflect.DeepEqual(got, []string{"node-a"}) {
		t.Fatalf("reborn subscriptions not routed: %v", got)
	}

	// A late retransmission from the dead incarnation must be dropped
	// before it can be applied.
	if tb.NoteEpoch("node-a", 100) {
		t.Fatal("dead incarnation's epoch accepted")
	}
}

func TestNoteEpochLegacyZeroAlwaysAccepted(t *testing.T) {
	tb := NewTable(newReg(t))
	if !tb.NoteEpoch("node-a", 0) {
		t.Fatal("legacy epoch 0 rejected")
	}
	if !tb.NoteEpoch("node-a", 42) {
		t.Fatal("upgrade from legacy rejected")
	}
	if !tb.NoteEpoch("node-a", 0) {
		t.Fatal("legacy epoch 0 rejected after upgrade")
	}
}

func TestEpochForgottenWithNode(t *testing.T) {
	tb := NewTable(newReg(t))
	tb.NoteEpoch("node-a", 200)
	tb.ApplySnapshot("node-a", 3, nil)
	tb.RemoveNode("node-a")
	// After an explicit removal the old epoch must not block a node
	// that rejoins with a smaller (but fresh to us) epoch.
	if !tb.NoteEpoch("node-a", 150) {
		t.Fatal("epoch survived RemoveNode")
	}
	tb.NoteEpoch("node-b", 300)
	tb.ApplySnapshot("node-b", 1, nil)
	tb.RetainNodes([]string{"node-a"})
	if !tb.NoteEpoch("node-b", 250) {
		t.Fatal("epoch survived RetainNodes")
	}
}
