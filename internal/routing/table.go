// Package routing implements the publisher-side routing plane: the
// layer between DACE's reflexive control plane and its data plane that
// turns the stream of subscription advertisements into compiled,
// per-(class, node) compound matchers hosted at every publisher.
//
// The paper argues filters should run "at a more favourable stage
// (e.g., a remote host) to reduce network load" (§2.3.2, §3.3.3) and
// disseminates subscriptions as obvents (§4.2). A Table is the
// publisher-side materialization of that advertisement stream:
//
//	subscription ads ──► Table (per-node snapshots, seq-reconciled)
//	                       │ lazily, per published class
//	                       ▼
//	                 classPlan: always-match nodes + one
//	                 matching.Compound whose match IDs are nodes
//	                       │ per published event
//	                       ▼
//	               Destinations: one compound evaluation total,
//	               instead of one filter.Evaluate per remote sub
//
// A node passes the class's compound when at least one of its
// advertised filters passes; a node advertising any filterless
// subscription for the class short-circuits to always-match and its
// filters never evaluate. Identical filters from different subscribers
// are deduplicated per node by their canonical wire bytes
// (filter.MarshalCanonical). Plans carry the table and registry
// generations they were compiled under and are recompiled lazily after
// any advertisement or type registration, mirroring the subscriber-side
// dispatchTable.
//
// Advertisement ingestion is idempotent and sequence-reconciled: full
// snapshots replace a node's state when newer, deltas (add/remove by
// subscription ID) apply only on top of the exact base sequence they
// were diffed against and are otherwise parked until the chain closes —
// the control channel is reliable but unordered.
package routing

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/matching"
	"govents/internal/obvent"
	"govents/internal/wire"
)

// Table is one publisher's view of the domain's advertised
// subscriptions, indexed for per-event destination routing. It is safe
// for concurrent use: ad application takes a mutex, routing reads
// immutable compiled plans.
type Table struct {
	reg *obvent.Registry

	mu    sync.Mutex
	nodes map[string]*nodeState
	// epochs records each node's advertised incarnation (its boot
	// stamp). A restarted node restarts its ad sequence from 1; without
	// the epoch its fresh snapshots would be rejected as stale against
	// the previous incarnation's high sequence — forever, since stale
	// ads still refresh lastSeen. See NoteEpoch.
	epochs map[string]int64
	gen    atomic.Uint64 // bumped on every applied mutation

	// adTTL is the silent-node expiry: a node whose last advertisement
	// (of any kind — stale and deferred ads also prove liveness) is
	// older than adTTL is dropped by ExpireSilent even without a
	// membership change. Zero disables expiry.
	adTTL time.Duration
	// now is the clock; replaceable in tests.
	now func() time.Time

	// plans caches class name -> *classPlan, invalidated by generation.
	plans sync.Map

	// match pools the compound-output scratch of Destinations so
	// steady-state routing does not allocate.
	match sync.Pool

	adsApplied   atomic.Uint64
	adsStale     atomic.Uint64
	adsDeferred  atomic.Uint64
	adsRefreshed atomic.Uint64
	adsRejected  atomic.Uint64
	nodesExpired atomic.Uint64

	// classStats maps class name -> *classCounters. Only registered
	// classes get entries; events of unknown wire names fold into
	// unknownStats so arbitrary off-the-wire strings cannot grow the
	// map (mirroring plan()'s caching rule).
	classStats   sync.Map
	unknownStats classCounters
}

// nodeState is the applied advertisement state of one node.
type nodeState struct {
	seq  uint64
	subs map[string]subRecord // by subscription ID; nil until a snapshot applied
	// pending parks deltas whose base sequence has not been applied
	// yet, keyed by that base.
	pending map[uint64]*delta
	// lastSeen is when the node last advertised anything (liveness for
	// the silent-TTL expiry).
	lastSeen time.Time
}

// subRecord is one advertised subscription with its filter compiled.
type subRecord struct {
	info core.SubscriptionInfo
	// expr is nil for filterless subscriptions — and for filters that
	// fail to parse, which fail open: the subscriber's local evaluation
	// decides, the publisher just ships.
	expr *filter.Expr
}

// maxPendingDeltas bounds how many out-of-order deltas are parked per
// node. Senders force a full snapshot at least every 8 deltas, so
// legitimate chains never need more; anything beyond is a buggy or
// hostile peer.
const maxPendingDeltas = 16

// delta is a parked delta advertisement.
type delta struct {
	seq    uint64
	add    []subRecord
	remove []string
}

// ApplyResult reports how an advertisement was ingested.
type ApplyResult struct {
	// Applied is true when the table changed (the ad, and possibly a
	// chain of parked deltas behind it, took effect).
	Applied bool
	// NewNode is true the first time any advertisement (applied,
	// deferred or stale) is witnessed from this node — the trigger for
	// anti-entropy re-advertisement.
	NewNode bool
	// Deferred is true when a delta was parked awaiting its base.
	Deferred bool
}

// classCounters is the per-class atomic form of Stats' routing half.
type classCounters struct {
	plansCompiled atomic.Uint64
	eventsRouted  atomic.Uint64
	compoundEvals atomic.Uint64
	nodesPruned   atomic.Uint64
	fallbackEvals atomic.Uint64
	prunedSends   atomic.Uint64
	skipFrames    atomic.Uint64
}

// Stats are a Table's cumulative routing-plane counters.
type Stats struct {
	// AdsApplied counts advertisements (snapshots and deltas, including
	// drained parked deltas) that changed the table.
	AdsApplied uint64
	// AdsStale counts advertisements discarded as overtaken by a newer
	// sequence.
	AdsStale uint64
	// AdsDeferred counts deltas parked because their base had not been
	// applied yet.
	AdsDeferred uint64
	// AdsRefreshed counts advertisements that only refreshed a node's
	// liveness and sequence without changing its subscription set
	// (heartbeats) — those do not invalidate compiled plans.
	AdsRefreshed uint64
	// AdsRejected counts advertisement payloads refused before
	// ingestion — oversized or undecodable control messages (counted by
	// the control-plane receiver via NoteAdRejected). A nonzero value
	// means some peer is buggy, hostile, or speaking a different control
	// schema.
	AdsRejected uint64
	// NodesExpired counts nodes dropped by the silent-TTL expiry
	// (ExpireSilent), as opposed to membership removal.
	NodesExpired uint64
	// PlansCompiled counts per-class plan compilations.
	PlansCompiled uint64
	// EventsRouted counts routing decisions (Destinations/NodesFor calls).
	EventsRouted uint64
	// CompoundEvals counts compound matcher evaluations — exactly one
	// per Destinations call that had conditional nodes and a decodable
	// event, regardless of subscription count.
	CompoundEvals uint64
	// NodesPruned counts candidate nodes not sent to because none of
	// their filters passed (the bandwidth the routing plane saves).
	NodesPruned uint64
	// FallbackEvals counts fail-open routings where the event could not
	// be decoded and every conditional node was included.
	FallbackEvals uint64
	// PrunedSends counts per-destination data frames an interest-aware
	// multicast class did not send because the destination had no
	// matching subscriber (reported by the dissemination layer via
	// NotePrunedSends) — the wire traffic ordered/gossip pruning saves.
	PrunedSends uint64
	// SkipFrames counts the per-destination skip-marker frames the
	// ordered classes shipped instead of pruned data (reported via
	// NoteSkipFrames). Markers are amortized over flush ticks and carry
	// no payload, so this stays far below PrunedSends under sparse
	// interest.
	SkipFrames uint64
	// AccessorPrograms counts the accessor programs compiled by the live
	// class plans' compound matchers (package accessor: per-event
	// reflection compiled to index-based steps, shared with the
	// subscriber-side dispatch matchers). Plans are recompiled on ad or
	// registry changes, restarting the count with the plan.
	AccessorPrograms uint64
	// AccessorFallbacks counts per-event path resolutions in the live
	// plans that fell back to name-based reflection.
	AccessorFallbacks uint64
	// PartialDecodes counts routing decisions evaluated straight from
	// the event's compact wire payload, without materializing the event.
	PartialDecodes uint64
	// WireMaterializations counts wire-encoded events the routing plans
	// had to decode fully (a referenced path goes through an accessor
	// method).
	WireMaterializations uint64
}

// classPlan is the immutable compiled routing state for one class.
type classPlan struct {
	gen    uint64 // table generation the plan was compiled under
	regGen uint64 // registry generation the plan was compiled under

	// always are nodes owed every event of the class (some filterless
	// conforming subscription), sorted.
	always []string
	// condNodes are nodes whose inclusion depends on their filters,
	// sorted. Disjoint from always.
	condNodes []string
	// compound factors the conditional nodes' filters; match IDs are
	// node addresses. Nil when condNodes is empty.
	compound *matching.Compound
}

// matchScratch is the pooled compound-output buffer of Destinations.
type matchScratch struct {
	ids []string
}

// NewTable returns an empty routing table over a type registry (shared
// with the node's engine, so conformance agrees with dispatch).
func NewTable(reg *obvent.Registry) *Table {
	t := &Table{
		reg:    reg,
		nodes:  make(map[string]*nodeState),
		epochs: make(map[string]int64),
		now:    time.Now,
	}
	t.match.New = func() any { return &matchScratch{} }
	return t
}

// SetAdTTL configures the silent-node TTL consulted by ExpireSilent.
// Zero (the default) disables expiry. The TTL must be paired with
// re-advertisement heartbeats domain-wide (dace sends them when its
// AdTTL is set): nodes only advertise on subscription changes, so
// without heartbeats a healthy but quiet node would be expired.
func (t *Table) SetAdTTL(d time.Duration) {
	t.mu.Lock()
	t.adTTL = d
	t.mu.Unlock()
}

// --- advertisement ingestion ---

// toRecords compiles advertised filters outside any lock.
func toRecords(infos []core.SubscriptionInfo) []subRecord {
	recs := make([]subRecord, 0, len(infos))
	for _, info := range infos {
		r := subRecord{info: info}
		if len(info.Filter) > 0 {
			if expr, err := filter.Unmarshal(info.Filter); err == nil {
				r.expr = expr
			}
		}
		recs = append(recs, r)
	}
	return recs
}

// ApplySnapshot ingests a full snapshot advertisement: node's complete
// subscription set at sequence seq. Snapshots are idempotent and
// newest-wins; a snapshot additionally drains any parked deltas that
// chain directly onto it. A snapshot identical to the applied state (a
// liveness heartbeat) advances the sequence and refreshes lastSeen but
// does not invalidate compiled plans.
func (t *Table) ApplySnapshot(node string, seq uint64, subs []core.SubscriptionInfo) ApplyResult {
	t.mu.Lock()
	st, res := t.nodeLocked(node)
	st.lastSeen = t.now()
	if st.subs != nil && seq <= st.seq {
		t.adsStale.Add(1)
		t.mu.Unlock()
		return res
	}
	if sameSubsLocked(st.subs, subs) {
		// Heartbeat snapshot: nothing changed, so skip filter
		// recompilation entirely — advance the sequence, drain any
		// parked deltas that now chain, and leave compiled plans
		// alone unless a drained delta changed something.
		st.seq = seq
		t.adsRefreshed.Add(1)
		changed := t.drainLocked(st)
		if changed {
			t.gen.Add(1)
		}
		res.Applied = changed
		t.mu.Unlock()
		return res
	}
	t.mu.Unlock()

	recs := toRecords(subs) // parse filters outside the lock

	t.mu.Lock()
	defer t.mu.Unlock()
	// Reacquire the state: it may have been expired or advanced while
	// the filters were compiling (NewNode was already captured above).
	st, _ = t.nodeLocked(node)
	st.lastSeen = t.now()
	if st.subs != nil && seq <= st.seq {
		t.adsStale.Add(1)
		return res
	}
	st.subs = make(map[string]subRecord, len(recs))
	for _, r := range recs {
		st.subs[r.info.ID] = r
	}
	st.seq = seq
	t.adsApplied.Add(1)
	t.drainLocked(st)
	t.gen.Add(1)
	res.Applied = true
	return res
}

// NoteEpoch records the advertised incarnation of a node before its ad
// is applied, and reports whether the ad should be processed at all. A
// higher epoch than recorded is a rebirth: the previous incarnation's
// state (and its high ad sequence) is dropped so the newborn's
// sequence-1 snapshot applies as a NewNode — which also triggers the
// usual anti-entropy exchange. A lower epoch is a late retransmission
// from a dead incarnation and must be ignored entirely. Epoch zero
// (a peer predating epochs) is always accepted.
func (t *Table) NoteEpoch(node string, epoch int64) bool {
	if epoch == 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.epochs[node]
	switch {
	case epoch < cur:
		t.adsStale.Add(1)
		return false
	case epoch > cur:
		t.epochs[node] = epoch
		if _, ok := t.nodes[node]; ok && cur != 0 {
			// A genuine rebirth, not the first sighting: forget the
			// dead incarnation.
			delete(t.nodes, node)
			t.gen.Add(1)
		}
	}
	return true
}

// sameSubsLocked reports whether the applied subscription map equals
// the incoming snapshot (nil subs — no snapshot applied yet — never
// equals, so a first snapshot always counts as a change). Comparison is
// by advertised bytes only, so heartbeat snapshots are recognized
// without parsing a single filter.
func sameSubsLocked(cur map[string]subRecord, subs []core.SubscriptionInfo) bool {
	if cur == nil || len(cur) != len(subs) {
		return false
	}
	for _, info := range subs {
		prev, ok := cur[info.ID]
		if !ok || !infoEqual(prev.info, info) {
			return false
		}
	}
	return true
}

// infoEqual reports whether two advertised descriptions are identical
// (filters compare by canonical wire bytes).
func infoEqual(a, b core.SubscriptionInfo) bool {
	return a.ID == b.ID && a.TypeName == b.TypeName && a.DurableID == b.DurableID &&
		a.Certified == b.Certified && bytes.Equal(a.Filter, b.Filter)
}

// ApplyDelta ingests a delta advertisement: adds and removals relative
// to the node's state at baseSeq. A delta whose base is not the
// currently applied sequence is parked (the control channel does not
// order) and applied when the chain closes; one already overtaken is
// discarded.
func (t *Table) ApplyDelta(node string, seq, baseSeq uint64, add []core.SubscriptionInfo, remove []string) ApplyResult {
	recs := toRecords(add)

	t.mu.Lock()
	defer t.mu.Unlock()
	st, res := t.nodeLocked(node)
	st.lastSeen = t.now()
	if st.subs != nil && seq <= st.seq {
		t.adsStale.Add(1)
		return res
	}
	d := &delta{seq: seq, add: recs, remove: remove}
	if st.subs == nil || st.seq != baseSeq {
		// Base not applied yet: park until the chain closes. The park
		// is bounded — a peer forces a snapshot every snapshotEvery
		// deltas, so chains longer than that cannot be required, and an
		// unbounded park would let a buggy or malicious peer grow the
		// table without limit. When full, the farthest-future delta is
		// dropped; the sender's next snapshot resynchronizes.
		if st.pending == nil {
			st.pending = make(map[uint64]*delta)
		}
		if prev, ok := st.pending[baseSeq]; !ok || d.seq > prev.seq {
			st.pending[baseSeq] = d
		}
		if len(st.pending) > maxPendingDeltas {
			var maxBase uint64
			for base := range st.pending {
				if base > maxBase {
					maxBase = base
				}
			}
			delete(st.pending, maxBase)
		}
		t.adsDeferred.Add(1)
		res.Deferred = true
		return res
	}
	changed := t.applyDeltaLocked(st, d)
	changed = t.drainLocked(st) || changed
	if changed {
		t.gen.Add(1)
	}
	res.Applied = changed
	return res
}

// nodeLocked returns (creating if first witnessed) a node's state.
func (t *Table) nodeLocked(node string) (*nodeState, ApplyResult) {
	var res ApplyResult
	st, ok := t.nodes[node]
	if !ok {
		st = &nodeState{}
		t.nodes[node] = st
		res.NewNode = true
	}
	return st, res
}

// applyDeltaLocked applies one delta and reports whether it actually
// changed the subscription set (an empty delta — a liveness heartbeat —
// only advances the sequence and must not invalidate compiled plans).
func (t *Table) applyDeltaLocked(st *nodeState, d *delta) bool {
	changed := false
	for _, id := range d.remove {
		if _, ok := st.subs[id]; ok {
			delete(st.subs, id)
			changed = true
		}
	}
	for _, r := range d.add {
		if prev, ok := st.subs[r.info.ID]; !ok || !infoEqual(prev.info, r.info) {
			st.subs[r.info.ID] = r
			changed = true
		}
	}
	st.seq = d.seq
	if changed {
		t.adsApplied.Add(1)
	} else {
		t.adsRefreshed.Add(1)
	}
	return changed
}

// drainLocked applies every parked delta that now chains onto the
// applied sequence, drops those overtaken by it, and reports whether
// any drained delta changed the subscription set.
func (t *Table) drainLocked(st *nodeState) bool {
	for base := range st.pending {
		if base < st.seq {
			delete(st.pending, base)
		}
	}
	changed := false
	for {
		d, ok := st.pending[st.seq]
		if !ok {
			return changed
		}
		delete(st.pending, st.seq)
		changed = t.applyDeltaLocked(st, d) || changed
	}
}

// RemoveNode forgets a node entirely (membership departure).
func (t *Table) RemoveNode(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[node]; !ok {
		return
	}
	delete(t.nodes, node)
	delete(t.epochs, node)
	t.gen.Add(1)
}

// RetainNodes forgets every node not in members — the membership-change
// hook: a departed node must stop receiving events and stop being owed
// certified deliveries, and its state must not pin table memory.
func (t *Table) RetainNodes(members []string) {
	keep := make(map[string]bool, len(members))
	for _, m := range members {
		keep[m] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for node := range t.nodes {
		if !keep[node] {
			delete(t.nodes, node)
			delete(t.epochs, node)
			changed = true
		}
	}
	if changed {
		t.gen.Add(1)
	}
}

// ExpireSilent drops every node (excluding the listed addresses,
// typically the caller's own) whose last advertisement is older than
// the configured ad TTL — the ad-stream GC: a node silent past the TTL
// without a membership change must stop being owed events, certified
// deliveries, and table memory. It returns the dropped node addresses.
// No-op when no TTL is configured. A wrongly expired node (e.g. one
// whose heartbeats were delayed) re-enters as a new node on its next
// full-snapshot advertisement — forced at least every snapshotEvery
// deltas by the sender — which also triggers anti-entropy; its delta
// heartbeats in between are parked, so the mis-expiry window is
// bounded by a few heartbeat periods.
func (t *Table) ExpireSilent(exclude ...string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.adTTL <= 0 {
		return nil
	}
	cutoff := t.now().Add(-t.adTTL)
	var dropped []string
	for node, st := range t.nodes {
		skip := false
		for _, ex := range exclude {
			if node == ex {
				skip = true
				break
			}
		}
		if skip || !st.lastSeen.Before(cutoff) {
			continue
		}
		delete(t.nodes, node)
		dropped = append(dropped, node)
	}
	if len(dropped) > 0 {
		t.nodesExpired.Add(uint64(len(dropped)))
		t.gen.Add(1)
	}
	return dropped
}

// SubscriptionCount reports the number of applied subscriptions,
// excluding those of node exclude (the caller's own, for a
// "remote subscriptions known" reading).
func (t *Table) SubscriptionCount(exclude string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for node, st := range t.nodes {
		if node == exclude {
			continue
		}
		total += len(st.subs)
	}
	return total
}

// ForEachConforming calls fn for every applied subscription whose
// target type the class conforms to (the certified-delivery subscriber
// enumeration). fn must not call back into the table.
func (t *Table) ForEachConforming(class string, fn func(node string, info core.SubscriptionInfo)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for node, st := range t.nodes {
		for _, r := range st.subs {
			if t.reg.ConformsTo(class, r.info.TypeName) {
				fn(node, r.info)
			}
		}
	}
}

// --- plan compilation ---

// plan returns the compiled routing state for a class, compiling and
// caching it on first use and recompiling when the table or the type
// registry changed since. Classes the registry does not know are never
// cached (class names come off the wire; caching arbitrary strings
// would grow the map without bound).
func (t *Table) plan(class string) *classPlan {
	gen, regGen := t.gen.Load(), t.reg.Gen()
	if v, ok := t.plans.Load(class); ok {
		p := v.(*classPlan)
		if p.gen == gen && p.regGen == regGen {
			return p
		}
	}
	p := t.compile(class)
	if _, known := t.reg.TypeByName(class); known {
		t.plans.Store(class, p)
	}
	return p
}

// compile builds the class plan from the current node states: group
// each node's conforming subscriptions, short-circuit filterless nodes,
// and factor the rest into one compound whose IDs are node addresses.
func (t *Table) compile(class string) *classPlan {
	type nodeAgg struct {
		always bool
		exprs  []*filter.Expr
		seen   map[string]bool // canonical filter bytes -> present
	}

	t.mu.Lock()
	// Generations are captured under the lock, before reading state: a
	// mutation racing with compilation at worst stamps the plan with an
	// older generation, which re-triggers compilation on the next event.
	gen := t.gen.Load()
	regGen := t.reg.Gen()
	aggs := make(map[string]*nodeAgg)
	for node, st := range t.nodes {
		for _, r := range st.subs {
			if !t.reg.ConformsTo(class, r.info.TypeName) {
				continue
			}
			a := aggs[node]
			if a == nil {
				a = &nodeAgg{}
				aggs[node] = a
			}
			if a.always {
				continue
			}
			if r.expr == nil {
				// Filterless (or unparsable, failing open): the node
				// always matches; its other filters need not evaluate.
				a.always = true
				a.exprs = nil
				continue
			}
			key := string(r.info.Filter)
			if a.seen[key] {
				continue // identical filter from another subscriber
			}
			if a.seen == nil {
				a.seen = make(map[string]bool)
			}
			a.seen[key] = true
			a.exprs = append(a.exprs, r.expr)
		}
	}
	t.mu.Unlock()

	p := &classPlan{gen: gen, regGen: regGen}
	var filters map[string]*filter.Expr
	for node, a := range aggs {
		if a.always {
			p.always = append(p.always, node)
			continue
		}
		p.condNodes = append(p.condNodes, node)
		if filters == nil {
			filters = make(map[string]*filter.Expr)
		}
		if len(a.exprs) == 1 {
			filters[node] = a.exprs[0]
		} else {
			filters[node] = filter.Or(a.exprs...)
		}
	}
	sort.Strings(p.always)
	sort.Strings(p.condNodes)
	if filters != nil {
		p.compound = matching.New()
		// Validated on the subscriber at Subscribe and re-validated by
		// filter.Unmarshal on ingestion; AddBatch cannot fail here.
		_ = p.compound.AddBatch(filters)
	}
	t.counters(class).plansCompiled.Add(1)
	return p
}

// --- routing ---

// Destinations appends the sorted node set owed an event of the given
// class: every always-match node plus every conditional node with at
// least one passing filter — decided by a single compound evaluation.
// decode supplies the decoded event on demand; it is invoked at most
// once, and only when some candidate node actually has filters. A nil
// decode result fails open to all conditional nodes (the subscriber's
// local evaluation decides).
func (t *Table) Destinations(class string, decode func() any, dst []string) []string {
	p := t.plan(class)
	cc := t.counters(class)
	cc.eventsRouted.Add(1)
	if p.compound == nil {
		return append(dst, p.always...)
	}
	var ev any
	if decode != nil {
		ev = decode()
	}
	if ev == nil {
		cc.fallbackEvals.Add(1)
		return mergeSorted(dst, p.always, p.condNodes)
	}
	cc.compoundEvals.Add(1)
	sc := t.match.Get().(*matchScratch)
	// Fail-open matching: a node whose Or-of-filters errors (some
	// advertised filter cannot evaluate against this event) is included,
	// exactly as the per-entry baseline includes a node whose filter
	// evaluation errors — the subscriber's local pass decides. The Or
	// yields true or error whenever any term is true or errored, and
	// false only when every term is false, so node-level fail-open
	// composes correctly from per-subscription fail-open.
	matched := p.compound.MatchAppendFailOpen(ev, sc.ids[:0])
	if pruned := len(p.condNodes) - len(matched); pruned > 0 {
		cc.nodesPruned.Add(uint64(pruned))
	}
	dst = mergeSorted(dst, p.always, matched)
	sc.ids = matched[:0]
	t.match.Put(sc)
	return dst
}

// DestinationsWire is Destinations for an event still in compact wire
// form: the compound plan evaluates straight off the payload when every
// referenced path is a field chain, calling full() to materialize the
// event only when some plan path needs a method accessor. A full()
// error fails open to all conditional nodes, mirroring the nil-decode
// path of Destinations.
func (t *Table) DestinationsWire(class string, wp *wire.Prog, payload []byte, full func() (any, error), dst []string) []string {
	p := t.plan(class)
	cc := t.counters(class)
	cc.eventsRouted.Add(1)
	if p.compound == nil {
		return append(dst, p.always...)
	}
	sc := t.match.Get().(*matchScratch)
	matched, err := p.compound.MatchWireAppendFailOpen(wp, payload, full, sc.ids[:0])
	if err != nil {
		sc.ids = matched[:0]
		t.match.Put(sc)
		cc.fallbackEvals.Add(1)
		return mergeSorted(dst, p.always, p.condNodes)
	}
	cc.compoundEvals.Add(1)
	if pruned := len(p.condNodes) - len(matched); pruned > 0 {
		cc.nodesPruned.Add(uint64(pruned))
	}
	dst = mergeSorted(dst, p.always, matched)
	sc.ids = matched[:0]
	t.match.Put(sc)
	return dst
}

// NodesFor appends the sorted set of all candidate nodes for a class —
// every node hosting at least one conforming subscription, filters
// ignored. This is the subscriber-side-placement routing decision (and
// the membership question "who subscribes to this class at all?").
func (t *Table) NodesFor(class string, dst []string) []string {
	p := t.plan(class)
	t.counters(class).eventsRouted.Add(1)
	return mergeSorted(dst, p.always, p.condNodes)
}

// DestinationsNaive computes the same destination set by evaluating
// every subscription's filter independently, skipping a node's
// remaining entries once it matched — the pre-routing-plane publisher
// loop. It is the transparency oracle for tests and the baseline
// BenchmarkPublisherRouting measures the compound plan against.
func (t *Table) DestinationsNaive(class string, event any) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	dests := make(map[string]bool)
	for node, st := range t.nodes {
		for _, r := range st.subs {
			if dests[node] {
				break
			}
			if !t.reg.ConformsTo(class, r.info.TypeName) {
				continue
			}
			if r.expr != nil {
				ok, err := filter.Evaluate(r.expr, event)
				if err == nil && !ok {
					continue
				}
				// Evaluation errors fail open.
			}
			dests[node] = true
		}
	}
	out := make([]string, 0, len(dests))
	for d := range dests {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// mergeSorted appends the merge of two sorted, disjoint slices to dst.
func mergeSorted(dst []string, a, b []string) []string {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// --- stats ---

// counters returns (creating on first use) a class's counters. Classes
// the registry does not know share one sink: their names come off the
// wire, and one map entry per arbitrary peer-supplied string would grow
// the table without bound.
func (t *Table) counters(class string) *classCounters {
	if v, ok := t.classStats.Load(class); ok {
		return v.(*classCounters)
	}
	if _, known := t.reg.TypeByName(class); !known {
		return &t.unknownStats
	}
	v, _ := t.classStats.LoadOrStore(class, &classCounters{})
	return v.(*classCounters)
}

func (c *classCounters) snapshot() Stats {
	return Stats{
		PlansCompiled: c.plansCompiled.Load(),
		EventsRouted:  c.eventsRouted.Load(),
		CompoundEvals: c.compoundEvals.Load(),
		NodesPruned:   c.nodesPruned.Load(),
		FallbackEvals: c.fallbackEvals.Load(),
		PrunedSends:   c.prunedSends.Load(),
		SkipFrames:    c.skipFrames.Load(),
	}
}

// add folds another snapshot into s.
func (s *Stats) add(o Stats) {
	s.PlansCompiled += o.PlansCompiled
	s.EventsRouted += o.EventsRouted
	s.CompoundEvals += o.CompoundEvals
	s.NodesPruned += o.NodesPruned
	s.FallbackEvals += o.FallbackEvals
	s.PrunedSends += o.PrunedSends
	s.SkipFrames += o.SkipFrames
}

// Stats returns the table's cumulative counters, folded across classes.
func (t *Table) Stats() Stats {
	s := Stats{
		AdsApplied:   t.adsApplied.Load(),
		AdsStale:     t.adsStale.Load(),
		AdsDeferred:  t.adsDeferred.Load(),
		AdsRefreshed: t.adsRefreshed.Load(),
		AdsRejected:  t.adsRejected.Load(),
		NodesExpired: t.nodesExpired.Load(),
	}
	s.add(t.unknownStats.snapshot())
	t.classStats.Range(func(_, v any) bool {
		s.add(v.(*classCounters).snapshot())
		return true
	})
	t.plans.Range(func(_, v any) bool {
		s.foldAccessor(v.(*classPlan))
		return true
	})
	return s
}

// foldAccessor adds one class plan's compound accessor counters.
func (s *Stats) foldAccessor(p *classPlan) {
	if p == nil || p.compound == nil {
		return
	}
	ms := p.compound.Stats()
	s.AccessorPrograms += ms.AccessorPrograms
	s.AccessorFallbacks += ms.AccessorFallbacks
	s.PartialDecodes += ms.PartialDecodes
	s.WireMaterializations += ms.WireMaterializations
}

// NoteAdRejected records an advertisement payload the control-plane
// receiver refused before decoding (oversized or malformed framing).
// The table never sees such payloads; the receiver reports them here so
// the rejection shows up next to the other advertisement counters.
func (t *Table) NoteAdRejected() { t.adsRejected.Add(1) }

// NotePrunedSends records n per-destination data frames an
// interest-aware multicast class avoided sending for the given class.
// The table only routes; the dissemination layer reports the saving
// here so it shows up next to the class's routing counters.
func (t *Table) NotePrunedSends(class string, n uint64) {
	if n > 0 {
		t.counters(class).prunedSends.Add(n)
	}
}

// NoteSkipFrames records n per-destination skip-marker frames shipped
// in place of pruned data for the given class.
func (t *Table) NoteSkipFrames(class string, n uint64) {
	if n > 0 {
		t.counters(class).skipFrames.Add(n)
	}
}

// ClassStats returns one class's routing counters (the advertisement
// counters are table-wide and stay zero here).
func (t *Table) ClassStats(class string) Stats {
	var s Stats
	if v, ok := t.classStats.Load(class); ok {
		s = v.(*classCounters).snapshot()
	}
	if v, ok := t.plans.Load(class); ok {
		s.foldAccessor(v.(*classPlan))
	}
	return s
}

// StatsByClass returns the per-class routing counters for every class
// that has routed at least one event or compiled a plan.
func (t *Table) StatsByClass() map[string]Stats {
	out := make(map[string]Stats)
	t.classStats.Range(func(k, v any) bool {
		class := k.(string)
		s := v.(*classCounters).snapshot()
		if pv, ok := t.plans.Load(class); ok {
			s.foldAccessor(pv.(*classPlan))
		}
		out[class] = s
		return true
	})
	return out
}
