package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector accumulates received messages thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collector) handler(from string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, from+":"+string(payload))
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func TestBasicDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, err := n.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	b.SetHandler(c.handler)
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	n.Settle()
	if got := c.all(); len(got) != 1 || got[0] != "a:hello" {
		t.Fatalf("received %v", got)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	if _, err := n.NewEndpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewEndpoint("a"); err == nil {
		t.Fatal("expected duplicate-address error")
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	if err := a.Send("ghost", []byte("x")); err == nil {
		t.Fatal("expected error for unknown destination")
	}
}

func TestSendToSelf(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	var c collector
	a.SetHandler(c.handler)
	if err := a.Send("a", []byte("loop")); err != nil {
		t.Fatal(err)
	}
	n.Settle()
	if c.len() != 1 {
		t.Fatalf("self-send delivered %d times", c.len())
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	var c collector
	b.SetHandler(c.handler)
	for i := 0; i < 50; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	n.Settle()
	if c.len() != 0 {
		t.Fatalf("lossRate=1 delivered %d messages", c.len())
	}
	sent, _, dropped, delivered := n.Stats()
	if sent != 50 || dropped != 50 || delivered != 0 {
		t.Errorf("stats sent=%d dropped=%d delivered=%d", sent, dropped, delivered)
	}
}

func TestPartialLossIsSeeded(t *testing.T) {
	run := func(seed int64) int {
		n := New(Config{LossRate: 0.5, Seed: seed})
		defer n.Close()
		a, _ := n.NewEndpoint("a")
		b, _ := n.NewEndpoint("b")
		var c collector
		b.SetHandler(c.handler)
		for i := 0; i < 200; i++ {
			_ = a.Send("b", []byte("x"))
		}
		n.Settle()
		return c.len()
	}
	x, y := run(7), run(7)
	if x != y {
		t.Errorf("same seed gave different outcomes: %d vs %d", x, y)
	}
	if x == 0 || x == 200 {
		t.Errorf("lossRate=0.5 delivered %d of 200", x)
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{DupRate: 1.0})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	var c collector
	b.SetHandler(c.handler)
	for i := 0; i < 10; i++ {
		_ = a.Send("b", []byte("x"))
	}
	n.Settle()
	if c.len() != 20 {
		t.Fatalf("dupRate=1 delivered %d, want 20", c.len())
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	cc, _ := n.NewEndpoint("c")
	var cb, ccoll collector
	b.SetHandler(cb.handler)
	cc.SetHandler(ccoll.handler)

	n.Partition([]string{"a"}, []string{"b"})
	_ = a.Send("b", []byte("cut"))
	_ = a.Send("c", []byte("ok"))
	n.Settle()
	if cb.len() != 0 {
		t.Error("partitioned link delivered a message")
	}
	if ccoll.len() != 1 {
		t.Error("unpartitioned link should deliver")
	}

	n.Heal()
	_ = a.Send("b", []byte("back"))
	n.Settle()
	if cb.len() != 1 {
		t.Error("healed link should deliver")
	}
}

func TestCrashAndRestart(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	var c collector
	b.SetHandler(c.handler)

	n.Crash("b")
	_ = a.Send("b", []byte("lost"))
	n.Settle()
	if c.len() != 0 {
		t.Error("crashed endpoint received a message")
	}

	n.Restart("b")
	_ = a.Send("b", []byte("alive"))
	n.Settle()
	if c.len() != 1 {
		t.Error("restarted endpoint should receive")
	}
}

func TestCrashLosesInFlight(t *testing.T) {
	n := New(Config{MinLatency: 30 * time.Millisecond, MaxLatency: 40 * time.Millisecond})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	var c collector
	b.SetHandler(c.handler)
	_ = a.Send("b", []byte("in-flight"))
	n.Crash("b") // crash while the message is still in the air
	n.Settle()
	if c.len() != 0 {
		t.Error("message delivered to endpoint that crashed mid-flight")
	}
}

func TestLatencyIsApplied(t *testing.T) {
	n := New(Config{MinLatency: 20 * time.Millisecond, MaxLatency: 25 * time.Millisecond})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	done := make(chan time.Time, 1)
	b.SetHandler(func(string, []byte) { done <- time.Now() })
	start := time.Now()
	_ = a.Send("b", []byte("x"))
	got := <-done
	if d := got.Sub(start); d < 20*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ 20ms", d)
	}
}

func TestClosedEndpointSendFails(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	_, _ = n.NewEndpoint("b")
	_ = a.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send on closed endpoint should fail")
	}
}

func TestCloseNetworkStopsTraffic(t *testing.T) {
	n := New(Config{})
	a, _ := n.NewEndpoint("a")
	_, _ = n.NewEndpoint("b")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send on closed network should fail")
	}
	// Idempotent close.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, p []byte) { got <- p })
	buf := []byte("original")
	_ = a.Send("b", buf)
	buf[0] = 'X' // mutate after send
	received := <-got
	if string(received) != "original" {
		t.Errorf("payload aliased sender buffer: %q", received)
	}
}

func TestHandlerMaySend(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint("a")
	b, _ := n.NewEndpoint("b")
	var pong atomic.Int32
	b.SetHandler(func(from string, p []byte) {
		_ = b.Send(from, []byte("pong"))
	})
	a.SetHandler(func(from string, p []byte) {
		pong.Add(1)
	})
	_ = a.Send("b", []byte("ping"))
	n.Settle()
	if pong.Load() != 1 {
		t.Fatalf("pong count = %d", pong.Load())
	}
}

func TestConcurrentSendsAllDelivered(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	const senders, per = 8, 100
	sink, _ := n.NewEndpoint("sink")
	var count atomic.Int64
	sink.SetHandler(func(string, []byte) { count.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		ep, err := n.NewEndpoint(string(rune('A' + i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = ep.Send("sink", []byte("m"))
			}
		}()
	}
	wg.Wait()
	n.Settle()
	if count.Load() != senders*per {
		t.Fatalf("delivered %d, want %d", count.Load(), senders*per)
	}
}
