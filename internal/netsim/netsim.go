// Package netsim provides the point-to-point messaging substrate that the
// dissemination protocols of this repository run on.
//
// The paper evaluates its DACE architecture on a real distributed
// infrastructure; this repository substitutes an in-process simulated
// network (per the reproduction ground rules): endpoints exchange byte
// messages through a Network that injects configurable latency, loss,
// duplication, partitions and crashes, with a seeded random source for
// reproducibility. A real TCP transport with the same Transport interface
// lives in package transport.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes an inbound message. Handlers run on dedicated
// delivery goroutines; they may call Send.
type Handler func(from string, payload []byte)

// Transport is the messaging abstraction shared by the simulated network
// and the TCP transport: addressed, connectionless, best-effort delivery
// of byte payloads. Reliability is layered on top by the multicast
// protocols.
type Transport interface {
	// Addr returns the endpoint's stable address.
	Addr() string
	// Send transmits payload to the endpoint with address to. Send is
	// asynchronous and best-effort: a nil error does not imply
	// delivery.
	Send(to string, payload []byte) error
	// SetHandler installs the inbound message handler. It must be
	// called before any message is expected; installing a handler
	// replaces the previous one.
	SetHandler(h Handler)
	// Close releases the endpoint. Further Sends fail.
	Close() error
}

// Config controls the fault model of a simulated Network.
type Config struct {
	// MinLatency and MaxLatency bound the uniformly distributed
	// one-way delay. Both zero means immediate handoff.
	MinLatency time.Duration
	MaxLatency time.Duration
	// LossRate is the probability in [0,1] that a message is dropped.
	LossRate float64
	// DupRate is the probability in [0,1] that a message is delivered
	// twice.
	DupRate float64
	// Seed seeds the random source; zero selects a fixed default so
	// runs are reproducible unless explicitly varied.
	Seed int64
}

// Network is a simulated unreliable network. Create endpoints with
// NewEndpoint; connect the fault model with the Config passed to New.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*Endpoint
	blocked   map[[2]string]bool // unordered pairs cut by partitions
	down      map[string]bool    // crashed/disconnected endpoints
	closed    bool

	inflight inflightCounter

	// Counters for bandwidth/message accounting (exp C1).
	sentMessages atomic.Int64
	sentBytes    atomic.Int64
	dropped      atomic.Int64
	delivered    atomic.Int64
}

// New returns a Network with the given fault model.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	return &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[string]*Endpoint),
		blocked:   make(map[[2]string]bool),
		down:      make(map[string]bool),
	}
}

// ErrClosed is returned by operations on closed networks or endpoints.
var ErrClosed = errors.New("netsim: closed")

// NewEndpoint creates and registers an endpoint with the given address.
func (n *Network) NewEndpoint(addr string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("netsim: endpoint %q already exists", addr)
	}
	ep := &Endpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep, nil
}

// pairKey returns the canonical unordered pair key.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition cuts all links between the endpoints in side a and those in
// side b (both directions). Endpoints within a side stay connected.
func (n *Network) Partition(a, b []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[pairKey(x, y)] = true
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]string]bool)
}

// Crash disconnects an endpoint: all traffic to and from it is dropped
// until Restart. The endpoint object stays valid.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = true
}

// Restart reconnects a crashed endpoint.
func (n *Network) Restart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, addr)
}

// Close shuts down the network; all endpoints are closed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.markClosed()
	}
	n.inflight.Wait()
	return nil
}

// Settle blocks until all in-flight messages have been delivered or
// dropped. It is a test aid: after Settle returns, no deliveries triggered
// by earlier Sends remain pending (deliveries may themselves have sent new
// messages, which Settle also waits for, as long as each cascade hop is
// sent before the previous message's delivery completes; a handler that
// defers its sends to another goroutine can slip past an in-progress
// Settle, which then simply observes the counter's next zero).
func (n *Network) Settle() {
	n.inflight.Wait()
}

// inflightCounter is a WaitGroup variant whose Add may be called
// concurrently with Wait even when the counter is at zero. Handlers on
// asynchronous delivery queues send new messages while Settle waits —
// the exact interleaving sync.WaitGroup forbids (Add-from-zero racing
// Wait), observed as a data race under the multicast ad cascade.
type inflightCounter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// Add adjusts the counter by d.
func (c *inflightCounter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	if c.n < 0 {
		panic("netsim: negative in-flight count")
	}
	if c.n == 0 && c.cond != nil {
		c.cond.Broadcast()
	}
}

// Done decrements the counter.
func (c *inflightCounter) Done() { c.Add(-1) }

// Wait blocks until the counter reaches zero.
func (c *inflightCounter) Wait() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
	for c.n > 0 {
		c.cond.Wait()
	}
}

// Stats reports cumulative counters: messages offered to the network,
// total payload bytes offered, messages dropped by the fault model, and
// messages delivered to handlers.
func (n *Network) Stats() (sent, bytes, dropped, delivered int64) {
	return n.sentMessages.Load(), n.sentBytes.Load(), n.dropped.Load(), n.delivered.Load()
}

// ResetStats zeroes the cumulative counters.
func (n *Network) ResetStats() {
	n.sentMessages.Store(0)
	n.sentBytes.Store(0)
	n.dropped.Store(0)
	n.delivered.Store(0)
}

// send implements the fault model. Called by Endpoint.Send.
func (n *Network) send(from, to string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no endpoint %q", to)
	}
	n.sentMessages.Add(1)
	n.sentBytes.Add(int64(len(payload)))

	if n.down[from] || n.down[to] || n.blocked[pairKey(from, to)] {
		n.dropped.Add(1)
		n.mu.Unlock()
		return nil // silently dropped, like a real network
	}

	copies := 1
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		copies = 0
		n.dropped.Add(1)
	} else if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		copies = 2
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		delays[i] = n.randLatencyLocked()
	}
	n.mu.Unlock()

	// A copy of the payload is taken once so handlers can retain it.
	data := make([]byte, len(payload))
	copy(data, payload)

	for _, d := range delays {
		n.inflight.Add(1)
		go func(delay time.Duration) {
			defer n.inflight.Done()
			if delay > 0 {
				time.Sleep(delay)
			}
			// Re-check endpoint liveness at delivery time: a crash
			// while the message is in flight loses it.
			n.mu.Lock()
			deadNow := n.down[to] || n.closed
			n.mu.Unlock()
			if deadNow {
				n.dropped.Add(1)
				return
			}
			if dst.deliver(from, data) {
				n.delivered.Add(1)
			} else {
				n.dropped.Add(1)
			}
		}(d)
	}
	return nil
}

func (n *Network) randLatencyLocked() time.Duration {
	if n.cfg.MaxLatency <= 0 {
		return 0
	}
	if n.cfg.MaxLatency <= n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	span := n.cfg.MaxLatency - n.cfg.MinLatency
	return n.cfg.MinLatency + time.Duration(n.rng.Int63n(int64(span)))
}

// Endpoint is a simulated network attachment point.
type Endpoint struct {
	net  *Network
	addr string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Transport = (*Endpoint)(nil)

// Addr implements Transport.
func (e *Endpoint) Addr() string { return e.addr }

// SetHandler implements Transport.
func (e *Endpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send implements Transport.
func (e *Endpoint) Send(to string, payload []byte) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return e.net.send(e.addr, to, payload)
}

// Close implements Transport.
func (e *Endpoint) Close() error {
	e.markClosed()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	return nil
}

func (e *Endpoint) markClosed() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

// deliver hands a message to the endpoint's handler. Returns false if the
// endpoint is closed or has no handler.
func (e *Endpoint) deliver(from string, payload []byte) bool {
	e.mu.RLock()
	h := e.handler
	closed := e.closed
	e.mu.RUnlock()
	if closed || h == nil {
		return false
	}
	h(from, payload)
	return true
}
