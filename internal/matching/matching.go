// Package matching implements compound filters: the factoring of many
// subscribers' filters, gathered on a filtering host, into a single
// matcher that exploits their redundancy (paper §2.3.2: "a compound
// filter can be generated which factors out redundancies between these
// individual filters. By doing so, performance can be significantly
// improved (e.g., [ASS+99])").
//
// Two optimizations are applied, following Aguilera et al. [ASS+99]:
//
//  1. Common-subexpression elimination: syntactically identical leaf
//     conditions (by canonical form) across all subscriptions are
//     evaluated exactly once per event, and accessor paths shared by
//     different conditions are resolved exactly once per event.
//
//  2. Threshold indexing: numeric comparisons of the same accessor path
//     (Price < 100, Price < 250, Price >= 50, ...) are grouped and
//     resolved with one path evaluation plus binary searches over the
//     sorted thresholds, instead of one full evaluation per condition.
//
//  3. Accessor compilation: the unique-path table is compiled, per
//     event type on first sight, into index-based accessor programs
//     (package accessor) so steady-state matching performs no
//     name-based reflection at all; paths that cannot compile for a
//     type fall back to reflective resolution per event, preserving
//     fail-open semantics exactly. Programs live as long as the plan
//     and are invalidated with it on subscription churn.
//
// Compound matching is semantically transparent: Match returns exactly
// the subscriptions whose filter would individually accept the event
// (property-tested against filter.Evaluate).
package matching

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"govents/internal/accessor"
	"govents/internal/filter"
	"govents/internal/wire"
)

// Compound is a factored matcher over a dynamic set of subscriptions.
// It is safe for concurrent use; Match runs under a read lock so
// subscriptions can be added or removed concurrently with matching.
//
// Compilation is lazy: mutations (Add/AddBatch/Remove/RemoveBatch) only
// mark the plan dirty, and the next Match (or Stats) call recompiles it
// once. A burst of mutations — a routing-table ad application removing
// and adding many subscriptions — therefore costs a single compilation,
// not one per call.
type Compound struct {
	mu         sync.RWMutex
	subs       map[string]*filter.Expr
	plan       *plan // valid while !dirty; recompiled lazily on demand
	dirty      bool
	recompiles uint64 // plan compilations performed (Stats observability)

	// accessorStats survives plan recompilations: program compiles and
	// reflective fallbacks are properties of the matcher's lifetime, not
	// of one plan.
	accessorStats accessorCounters
}

// accessorCounters tracks the accessor-program activity of a matcher.
type accessorCounters struct {
	// compiles counts per-(event type, path) programs compiled.
	compiles atomic.Uint64
	// fallbacks counts per-event path resolutions that went through
	// reflective filter.ResolvePath because no program could compile.
	fallbacks atomic.Uint64
	// partials counts wire-encoded events evaluated entirely from their
	// compact payload — plan decided, event never materialized.
	partials atomic.Uint64
	// materialized counts wire-encoded events that had to be fully
	// decoded to evaluate the plan (a referenced path goes through an
	// accessor method, or the payload failed partial extraction).
	materialized atomic.Uint64
}

// New returns an empty compound matcher.
func New() *Compound {
	c := &Compound{subs: make(map[string]*filter.Expr)}
	c.plan = compile(c.subs, &c.accessorStats)
	return c
}

// Add registers (or replaces) a subscription's filter.
func (c *Compound) Add(subID string, e *filter.Expr) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("matching: add %s: %w", subID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs[subID] = e
	c.dirty = true
	return nil
}

// AddBatch registers many subscriptions' filters at once. On a
// validation error nothing is registered. (With lazy compilation Add is
// no longer quadratic across a bulk load, but AddBatch remains the
// idiomatic bulk entry point and validates all-or-nothing.)
func (c *Compound) AddBatch(filters map[string]*filter.Expr) error {
	for id, e := range filters {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("matching: add %s: %w", id, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range filters {
		c.subs[id] = e
	}
	if len(filters) > 0 {
		c.dirty = true
	}
	return nil
}

// Remove drops a subscription.
func (c *Compound) Remove(subID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[subID]; !ok {
		return
	}
	delete(c.subs, subID)
	c.dirty = true
}

// RemoveBatch drops many subscriptions at once — AddBatch's removal
// counterpart for callers maintaining one long-lived matcher across
// subscription churn. Like all mutations it costs at most one
// recompilation (deferred to the next Match) regardless of how many
// IDs it drops. (The routing and dispatch tables currently rebuild
// their compounds from scratch per plan instead of mutating them
// incrementally, so today this is API surface for external callers.)
func (c *Compound) RemoveBatch(subIDs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range subIDs {
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			c.dirty = true
		}
	}
}

// currentPlan returns the up-to-date plan, recompiling it first if
// mutations are pending. The fast path is a read lock and two loads.
func (c *Compound) currentPlan() *plan {
	c.mu.RLock()
	p, dirty := c.plan, c.dirty
	c.mu.RUnlock()
	if !dirty {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty {
		c.plan = compile(c.subs, &c.accessorStats)
		c.dirty = false
		c.recompiles++
	}
	return c.plan
}

// Len returns the number of registered subscriptions.
func (c *Compound) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.subs)
}

// Stats describes the factoring achieved by the current plan.
type Stats struct {
	// Subscriptions is the number of registered subscriptions.
	Subscriptions int
	// TotalConds is the total number of leaf conditions across all
	// subscription filters (what a naive matcher evaluates).
	TotalConds int
	// UniqueConds is the number of distinct conditions after
	// common-subexpression elimination (what the compound evaluates).
	UniqueConds int
	// IndexedConds is how many of the unique conditions are resolved
	// through the numeric threshold index.
	IndexedConds int
	// UniquePaths is the number of distinct accessor paths resolved
	// per event.
	UniquePaths int
	// Recompiles is the number of plan compilations this matcher has
	// performed over its lifetime. With lazy compilation it counts
	// mutation bursts, not individual mutations.
	Recompiles uint64
	// AccessorPrograms is the number of compiled accessor programs this
	// matcher has built over its lifetime: one per (event type, unique
	// path) pair first seen by a plan. Type layouts never change, so a
	// program is compiled at most once per plan per type.
	AccessorPrograms uint64
	// AccessorFallbacks counts per-event path resolutions that fell back
	// to reflective lookup because the path cannot compile against the
	// event's type (it then fails open per event, exactly as before).
	AccessorFallbacks uint64
	// PartialDecodes counts wire-encoded events this matcher evaluated
	// without materializing them: every path the plan references was
	// extracted straight from the compact payload.
	PartialDecodes uint64
	// WireMaterializations counts wire-encoded events that needed a full
	// decode to evaluate (method-accessor paths, or a payload that failed
	// extraction).
	WireMaterializations uint64
}

// Stats returns the factoring statistics of the current plan, forcing a
// pending recompilation first so the figures describe the live set.
func (c *Compound) Stats() Stats {
	p := c.currentPlan()
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := p.stats
	st.Recompiles = c.recompiles
	st.AccessorPrograms = c.accessorStats.compiles.Load()
	st.AccessorFallbacks = c.accessorStats.fallbacks.Load()
	st.PartialDecodes = c.accessorStats.partials.Load()
	st.WireMaterializations = c.accessorStats.materialized.Load()
	return st
}

// Match returns the sorted IDs of all subscriptions whose filter accepts
// the event. Conditions that fail to evaluate (missing accessor, type
// mismatch) count as false for the affected subscriptions only.
func (c *Compound) Match(event any) []string {
	return c.MatchAppend(event, nil)
}

// MatchAppend is Match appending into dst (which may be nil), for
// callers on a hot path that reuse one output buffer across events: the
// engine dispatch loop matches thousands of envelopes per second and
// must not allocate a fresh result slice per envelope. The appended IDs
// are sorted; dst's existing contents are preserved.
func (c *Compound) MatchAppend(event any, dst []string) []string {
	return c.currentPlan().match(event, dst, false)
}

// MatchAppendFailOpen is MatchAppend with fail-open error semantics: a
// subscription whose formula cannot be evaluated (missing accessor,
// type mismatch) is appended alongside the true matches instead of
// being rejected. Publisher-side filtering hosts use this mode — an
// unevaluable remote filter must not suppress the send, because the
// subscriber's own evaluation is the authoritative pass (paper §2.3.2:
// remote filtering is an optimization, never a semantic change).
func (c *Compound) MatchAppendFailOpen(event any, dst []string) []string {
	return c.currentPlan().match(event, dst, true)
}

// MatchWireAppend evaluates the plan against a wire-encoded event,
// materializing it only when it must: when every accessor path the plan
// references is a structural (field/deref) chain, the referenced values
// are extracted straight from the compact payload by a per-(type, plan)
// extractor program and the event is never decoded at all. Plans
// referencing accessor methods — whose results are not wire locations —
// fall back to one full compiled decode via full, which also backstops
// malformed payloads (extraction and full decode reject exactly the
// same inputs, so corrupt input is observed identically on both paths).
// A non-nil error is full's decode failure; no IDs were appended.
func (c *Compound) MatchWireAppend(wp *wire.Prog, payload []byte, full func() (any, error), dst []string) ([]string, error) {
	return c.currentPlan().matchWire(wp, payload, full, dst, false)
}

// MatchWireAppendFailOpen is MatchWireAppend with fail-open error
// semantics (see MatchAppendFailOpen): publisher-side filtering hosts
// must ship on evaluation errors, never suppress.
func (c *Compound) MatchWireAppendFailOpen(wp *wire.Prog, payload []byte, full func() (any, error), dst []string) ([]string, error) {
	return c.currentPlan().matchWire(wp, payload, full, dst, true)
}

// MatchNaive evaluates every subscription's filter independently. It is
// the baseline the compound matcher is benchmarked against, and the
// reference implementation for transparency tests.
func (c *Compound) MatchNaive(event any) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for id, e := range c.subs {
		ok, err := filter.Evaluate(e, event)
		if err == nil && ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// --- compilation ---

// plan is an immutable compiled matcher.
type plan struct {
	conds []*filter.Cond // unique conditions, by slot

	// Per-subscription formulas, aligned by index and sorted by ID so
	// match emits sorted output without a per-event sort.
	ids   []string
	progs [][]finstr

	// paths: unique accessor paths resolved once per event.
	paths    []pathSlot
	pathSlot map[string]int

	// programs caches, per concrete event root type, the accessor
	// programs compiled for this plan's unique paths (aligned with
	// paths; a nil entry means the path cannot compile for that type and
	// falls back to reflective resolution per event). Compiled on first
	// sight of a type; a type's layout never changes, so entries stay
	// valid for the plan's lifetime — invalidation happens by plan
	// replacement, exactly like the engine's dispatchTable buckets
	// (subscription churn here, registry growth there). Growth is capped
	// at maxProgramTypes: the engine's and routing plane's matchers see
	// one type each, but Compound is public API and a caller feeding one
	// long-lived matcher arbitrarily many event types must degrade to
	// the reflective fallback, not grow memory without bound.
	programs     sync.Map // reflect.Type -> []*accessor.Program
	programTypes atomic.Int64

	// extractors caches, per concrete event type, the wire extractor
	// resolving this plan's unique paths from compact payloads — or a
	// nil entry when the plan cannot be evaluated lazily for that type
	// (a referenced path goes through an accessor method). Lifetime and
	// invalidation mirror programs: valid until plan replacement.
	extractors sync.Map // reflect.Type -> wireExt

	// acc are the owning Compound's accessor counters (shared across
	// plan recompilations).
	acc *accessorCounters

	// direct: conditions evaluated one-by-one (referencing path slots).
	direct []directCond

	// Numeric threshold groups, keyed by path slot.
	groups []thresholdGroup

	// maxStack bounds the evaluation stack any program needs.
	maxStack int

	// scratch pools per-match working state (path values, condition
	// results, evaluation stack) so steady-state matching does not
	// allocate. Pooled per plan because slice sizes are plan-specific.
	scratch sync.Pool

	stats Stats
}

type pathSlot struct {
	path []string
}

// directCond is a non-indexed condition: operands are either path slots
// or constants.
type directCond struct {
	slot     int // condition slot to fill
	op       filter.CmpOp
	lhsPath  int // -1 if constant
	lhsConst filter.Constant
	rhsPath  int
	rhsConst filter.Constant
}

// thresholdGroup evaluates all `path op const-number` conditions for one
// path with binary searches.
type thresholdGroup struct {
	pathIdx int
	// Sorted ascending by threshold, one list per operator family.
	lt, le, gt, ge []thresholdCond
	eq             map[float64][]int // threshold -> condition slots
	ne             []thresholdCond
}

type thresholdCond struct {
	threshold float64
	slot      int
}

// finstr is one postfix instruction of a flattened boolean formula.
// Formulas are evaluated iteratively over a small value stack instead of
// recursing through a pointer tree: the instruction array is contiguous
// (cache-friendly) and evaluation needs no call-frame allocation.
type finstr struct {
	op filter.ExprKind
	// arg is the condition slot for KindLeaf and the child count for
	// KindAnd/KindOr.
	arg int
}

// compile builds a plan from the current subscription set.
func compile(subs map[string]*filter.Expr, acc *accessorCounters) *plan {
	p := &plan{
		pathSlot: make(map[string]int),
		acc:      acc,
	}
	p.scratch.New = func() any { return &matchScratch{} }
	condSlot := make(map[string]int)

	ids := make([]string, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic plans

	total := 0
	p.ids = ids
	p.progs = make([][]finstr, len(ids))
	for i, id := range ids {
		prog := p.compileExpr(subs[id], condSlot, &total, nil)
		p.progs[i] = prog
		if d := stackDepth(prog); d > p.maxStack {
			p.maxStack = d
		}
	}

	// Partition unique conditions into indexed and direct.
	groupByPath := make(map[int]*thresholdGroup)
	for i, cond := range p.conds {
		if tg := p.tryIndex(i, cond, groupByPath); tg {
			continue
		}
		p.direct = append(p.direct, p.compileDirect(i, cond))
	}
	// Deterministic group order.
	slots := make([]int, 0, len(groupByPath))
	for s := range groupByPath {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	indexed := 0
	for _, s := range slots {
		g := groupByPath[s]
		for _, l := range [][]thresholdCond{g.lt, g.le, g.gt, g.ge, g.ne} {
			sort.Slice(l, func(i, j int) bool { return l[i].threshold < l[j].threshold })
			indexed += len(l)
		}
		for _, cs := range g.eq {
			indexed += len(cs)
		}
		p.groups = append(p.groups, *g)
	}

	p.stats = Stats{
		Subscriptions: len(subs),
		TotalConds:    total,
		UniqueConds:   len(p.conds),
		IndexedConds:  indexed,
		UniquePaths:   len(p.paths),
	}
	return p
}

// compileExpr interns leaf conditions and appends the expression's
// postfix program to prog: children first, then the combining operator
// carrying its child count.
func (p *plan) compileExpr(e *filter.Expr, condSlot map[string]int, total *int, prog []finstr) []finstr {
	switch e.Kind {
	case filter.KindConstTrue, filter.KindConstFalse:
		return append(prog, finstr{op: e.Kind})
	case filter.KindLeaf:
		*total++
		key := e.Cond.Canon()
		slot, ok := condSlot[key]
		if !ok {
			slot = len(p.conds)
			condSlot[key] = slot
			p.conds = append(p.conds, e.Cond)
		}
		return append(prog, finstr{op: filter.KindLeaf, arg: slot})
	case filter.KindNot:
		prog = p.compileExpr(e.Children[0], condSlot, total, prog)
		return append(prog, finstr{op: filter.KindNot})
	default: // And/Or
		for _, c := range e.Children {
			prog = p.compileExpr(c, condSlot, total, prog)
		}
		return append(prog, finstr{op: e.Kind, arg: len(e.Children)})
	}
}

// stackDepth computes the peak evaluation-stack depth of a program.
func stackDepth(prog []finstr) int {
	depth, max := 0, 0
	for _, in := range prog {
		switch in.op {
		case filter.KindConstTrue, filter.KindConstFalse, filter.KindLeaf:
			depth++
		case filter.KindAnd, filter.KindOr:
			depth -= in.arg - 1
		}
		if depth > max {
			max = depth
		}
	}
	return max
}

// internPath returns the slot of an accessor path, creating it if new.
func (p *plan) internPath(path []string) int {
	key := strings.Join(path, ".")
	if s, ok := p.pathSlot[key]; ok {
		return s
	}
	s := len(p.paths)
	p.pathSlot[key] = s
	p.paths = append(p.paths, pathSlot{path: path})
	return s
}

// tryIndex adds `path op numeric-const` conditions to a threshold group.
// Returns false when the condition does not fit the index shape.
func (p *plan) tryIndex(slot int, c *filter.Cond, groups map[int]*thresholdGroup) bool {
	if len(c.LHS.Path) == 0 || len(c.RHS.Path) != 0 {
		return false
	}
	if c.RHS.Const.Kind != filter.ConstInt && c.RHS.Const.Kind != filter.ConstFloat {
		return false
	}
	switch c.Op {
	case filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe, filter.OpEq, filter.OpNe:
	default:
		return false
	}
	pi := p.internPath(c.LHS.Path)
	g, ok := groups[pi]
	if !ok {
		g = &thresholdGroup{pathIdx: pi, eq: make(map[float64][]int)}
		groups[pi] = g
	}
	th := c.RHS.Const.AsFloat()
	tc := thresholdCond{threshold: th, slot: slot}
	switch c.Op {
	case filter.OpLt:
		g.lt = append(g.lt, tc)
	case filter.OpLe:
		g.le = append(g.le, tc)
	case filter.OpGt:
		g.gt = append(g.gt, tc)
	case filter.OpGe:
		g.ge = append(g.ge, tc)
	case filter.OpEq:
		g.eq[th] = append(g.eq[th], slot)
	case filter.OpNe:
		g.ne = append(g.ne, tc)
	}
	return true
}

// compileDirect prepares a directly evaluated condition.
func (p *plan) compileDirect(slot int, c *filter.Cond) directCond {
	d := directCond{slot: slot, op: c.Op, lhsPath: -1, rhsPath: -1}
	if len(c.LHS.Path) > 0 {
		d.lhsPath = p.internPath(c.LHS.Path)
	} else {
		d.lhsConst = c.LHS.Const
	}
	if len(c.RHS.Path) > 0 {
		d.rhsPath = p.internPath(c.RHS.Path)
	} else {
		d.rhsConst = c.RHS.Const
	}
	return d
}

// --- matching ---

// Tri-state condition outcomes. A condition that fails to evaluate
// poisons (rejects) exactly the subscriptions whose formula reaches it,
// matching filter.Evaluate's short-circuiting error semantics.
const (
	rFalse uint8 = iota
	rTrue
	rErr
)

// matchScratch is the pooled per-match working state.
type matchScratch struct {
	vals    []filter.Constant
	valOK   []bool
	results []uint8
	stack   []uint8
}

// getScratch returns a scratch sized for this plan, with results and
// valOK zeroed (rFalse / not-resolved).
func (p *plan) getScratch() *matchScratch {
	sc := p.scratch.Get().(*matchScratch)
	if cap(sc.vals) < len(p.paths) {
		sc.vals = make([]filter.Constant, len(p.paths))
		sc.valOK = make([]bool, len(p.paths))
	}
	sc.vals = sc.vals[:len(p.paths)]
	sc.valOK = sc.valOK[:len(p.paths)]
	clear(sc.valOK)
	if cap(sc.results) < len(p.conds) {
		sc.results = make([]uint8, len(p.conds))
	}
	sc.results = sc.results[:len(p.conds)]
	clear(sc.results)
	if cap(sc.stack) < p.maxStack {
		sc.stack = make([]uint8, 0, p.maxStack)
	}
	sc.stack = sc.stack[:0]
	return sc
}

// match evaluates the plan against one event, appending matches to dst.
// With failOpen, formulas whose outcome is an evaluation error count as
// matches (the caller ships and lets the subscriber decide).
func (p *plan) match(event any, dst []string, failOpen bool) []string {
	if len(p.ids) == 0 {
		return dst
	}
	sc := p.getScratch()
	defer p.scratch.Put(sc)

	// 1. Resolve every unique path once, through the accessor programs
	// compiled for this event type (first sight compiles them); paths
	// that cannot compile fall back to reflective resolution per event.
	rv := reflect.ValueOf(event)
	var progs []*accessor.Program
	if len(p.paths) > 0 && rv.IsValid() {
		progs = p.programsFor(rv.Type())
	}
	vals := sc.vals
	valOK := sc.valOK
	for i, ps := range p.paths {
		var c filter.Constant
		if progs != nil && progs[i] != nil {
			var err error
			if c, err = progs[i].Constant(rv); err != nil {
				continue
			}
		} else {
			p.acc.fallbacks.Add(1)
			v, err := filter.ResolvePath(rv, ps.path)
			if err != nil {
				continue
			}
			if c, err = filter.ValueOf(v); err != nil {
				continue
			}
		}
		vals[i], valOK[i] = c, true
	}

	return p.evalConditions(sc, dst, failOpen)
}

// matchWire evaluates the plan against one wire-encoded event: path
// resolution (step 1) runs as a partial extraction over the compact
// payload when the per-(type, plan) extractor covers every referenced
// path, and the shared condition/formula evaluation (steps 2–3) runs
// over the extracted values. Otherwise the event is materialized once
// via full and matched normally.
func (p *plan) matchWire(wp *wire.Prog, payload []byte, full func() (any, error), dst []string, failOpen bool) ([]string, error) {
	if len(p.ids) == 0 {
		return dst, nil
	}
	if ex := p.extractorFor(wp.Type()); ex != nil {
		sc := p.getScratch()
		if err := ex.Extract(payload, sc.vals, sc.valOK); err == nil {
			p.acc.partials.Add(1)
			dst = p.evalConditions(sc, dst, failOpen)
			p.scratch.Put(sc)
			return dst, nil
		}
		// Malformed payload: fall through to materialization, whose
		// decode rejects the same input with the authoritative error.
		p.scratch.Put(sc)
	}
	event, err := full()
	if err != nil {
		return dst, err
	}
	p.acc.materialized.Add(1)
	return p.match(event, dst, failOpen), nil
}

// extractorFor returns the wire extractor evaluating this plan's paths
// for one event type, or nil when lazy evaluation is impossible for it.
// The steady-state path is one lock-free map hit. An extractor exists
// only when it covers every unique path: a partially resolved value
// table could not reproduce the materialized path's error semantics for
// the uncovered paths.
func (p *plan) extractorFor(t reflect.Type) *wire.Extractor {
	if v, ok := p.extractors.Load(t); ok {
		return v.(wireExt).ex
	}
	var ex *wire.Extractor
	if progs := p.programsFor(t); progs != nil {
		chains := make([][]int, len(p.paths))
		all := true
		for i, prog := range progs {
			if prog == nil {
				all = false
				break
			}
			chain, ok := prog.FieldSteps()
			if !ok {
				all = false
				break
			}
			chains[i] = chain
		}
		if all {
			if compiled, err := wire.CompileExtract(t, chains); err == nil && compiled.AllAble() {
				ex = compiled
			}
		}
	}
	if v, loaded := p.extractors.LoadOrStore(t, wireExt{ex}); loaded {
		return v.(wireExt).ex
	}
	return ex
}

// wireExt is one cached extractor outcome (nil = materialize).
type wireExt struct{ ex *wire.Extractor }

// evalConditions runs the plan's condition evaluation (step 2) and
// per-subscription formulas (step 3) over the resolved path values in
// sc, appending matches to dst. Shared verbatim by the materialized and
// wire paths, so the two can never drift semantically.
func (p *plan) evalConditions(sc *matchScratch, dst []string, failOpen bool) []string {
	vals := sc.vals
	valOK := sc.valOK

	// 2. Evaluate unique conditions.
	results := sc.results

	// 2a. Threshold groups: one comparison set per path.
	for gi := range p.groups {
		g := &p.groups[gi]
		groupErr := !valOK[g.pathIdx]
		var v float64
		if !groupErr {
			c := vals[g.pathIdx]
			if c.Kind != filter.ConstInt && c.Kind != filter.ConstFloat {
				groupErr = true // type mismatch errors in direct evaluation
			} else {
				v = c.AsFloat()
			}
		}
		if groupErr {
			for _, l := range [][]thresholdCond{g.lt, g.le, g.gt, g.ge, g.ne} {
				for _, tc := range l {
					results[tc.slot] = rErr
				}
			}
			for _, slots := range g.eq {
				for _, slot := range slots {
					results[slot] = rErr
				}
			}
			continue
		}
		// path < threshold holds for every threshold strictly above v.
		idx := sort.Search(len(g.lt), func(i int) bool { return g.lt[i].threshold > v })
		for _, tc := range g.lt[idx:] {
			results[tc.slot] = rTrue
		}
		// path <= threshold holds for thresholds >= v.
		idx = sort.Search(len(g.le), func(i int) bool { return g.le[i].threshold >= v })
		for _, tc := range g.le[idx:] {
			results[tc.slot] = rTrue
		}
		// path > threshold holds for thresholds strictly below v.
		idx = sort.Search(len(g.gt), func(i int) bool { return g.gt[i].threshold >= v })
		for _, tc := range g.gt[:idx] {
			results[tc.slot] = rTrue
		}
		// path >= threshold holds for thresholds <= v.
		idx = sort.Search(len(g.ge), func(i int) bool { return g.ge[i].threshold > v })
		for _, tc := range g.ge[:idx] {
			results[tc.slot] = rTrue
		}
		for _, slot := range g.eq[v] {
			results[slot] = rTrue
		}
		for _, tc := range g.ne {
			if tc.threshold != v {
				results[tc.slot] = rTrue
			}
		}
	}

	// 2b. Direct conditions.
	for _, d := range p.direct {
		lhs, rhs := d.lhsConst, d.rhsConst
		if d.lhsPath >= 0 {
			if !valOK[d.lhsPath] {
				results[d.slot] = rErr
				continue
			}
			lhs = vals[d.lhsPath]
		}
		if d.rhsPath >= 0 {
			if !valOK[d.rhsPath] {
				results[d.slot] = rErr
				continue
			}
			rhs = vals[d.rhsPath]
		}
		ok, err := filter.Compare(d.op, lhs, rhs)
		switch {
		case err != nil:
			results[d.slot] = rErr
		case ok:
			results[d.slot] = rTrue
		}
	}

	// 3. Evaluate each subscription's formula over the results. IDs are
	// pre-sorted, so the appended output is sorted without a per-event
	// sort.
	for i, prog := range p.progs {
		switch evalProg(prog, results, sc.stack[:0]) {
		case rTrue:
			dst = append(dst, p.ids[i])
		case rErr:
			if failOpen {
				dst = append(dst, p.ids[i])
			}
		}
	}
	return dst
}

// maxProgramTypes bounds how many distinct event root types one plan
// compiles program tables for. Engine buckets and routing plans see
// exactly one type each; the cap only bites a public Compound user
// matching heterogeneous types through one matcher, who then falls back
// to reflective resolution (visible as AccessorFallbacks).
const maxProgramTypes = 256

// programsFor returns the accessor programs for one event root type,
// compiling the plan's unique-path table against it on first sight.
// The steady-state path is one lock-free map hit; nil means "use the
// reflective fallback" (over-cap, or — entry-wise — uncompilable path).
func (p *plan) programsFor(t reflect.Type) []*accessor.Program {
	if v, ok := p.programs.Load(t); ok {
		return v.([]*accessor.Program)
	}
	if p.programTypes.Load() >= maxProgramTypes {
		return nil
	}
	list := make([]*accessor.Program, len(p.paths))
	compiled := uint64(0)
	for i, ps := range p.paths {
		if prog, err := accessor.Compile(t, ps.path); err == nil {
			list[i] = prog
			compiled++
		}
	}
	if v, loaded := p.programs.LoadOrStore(t, list); loaded {
		// A concurrent matcher compiled the same table first; count
		// nothing and use its copy.
		return v.([]*accessor.Program)
	}
	p.programTypes.Add(1)
	p.acc.compiles.Add(compiled)
	return list
}

// evalProg runs a postfix program over the condition results. Although
// all conditions are pre-evaluated (so nothing is skipped), the
// combining rules reproduce filter.Evaluate's in-order short-circuiting
// exactly: an And yields the first non-true child outcome in child
// order (so a false child hides a later error, but an error before the
// first false poisons the formula), an Or the first non-false one.
func evalProg(prog []finstr, results []uint8, stack []uint8) uint8 {
	for _, in := range prog {
		switch in.op {
		case filter.KindConstTrue:
			stack = append(stack, rTrue)
		case filter.KindConstFalse:
			stack = append(stack, rFalse)
		case filter.KindLeaf:
			stack = append(stack, results[in.arg])
		case filter.KindNot:
			switch stack[len(stack)-1] {
			case rTrue:
				stack[len(stack)-1] = rFalse
			case rFalse:
				stack[len(stack)-1] = rTrue
			}
		case filter.KindAnd:
			base := len(stack) - in.arg
			v := rTrue
			for _, r := range stack[base:] {
				if r != rTrue {
					v = r
					break
				}
			}
			stack = append(stack[:base], v)
		case filter.KindOr:
			base := len(stack) - in.arg
			v := rFalse
			for _, r := range stack[base:] {
				if r != rFalse {
					v = r
					break
				}
			}
			stack = append(stack[:base], v)
		default:
			return rErr
		}
	}
	return stack[len(stack)-1]
}
