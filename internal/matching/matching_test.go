package matching

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"govents/internal/filter"
)

type quote struct {
	Company string
	Price   float64
	Amount  int
}

// Accessor methods (the paper's encapsulated form, LP2), so tests can
// exercise method-path programs alongside raw field paths.
func (q quote) GetPrice() float64 { return q.Price }

func (q quote) GetCompany() string { return q.Company }

func TestMatchBasic(t *testing.T) {
	c := New()
	if err := c.Add("cheap", filter.Path("Price").Lt(filter.Float(100))); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("telco", filter.Path("Company").Contains(filter.Str("Telco"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("both", filter.And(
		filter.Path("Price").Lt(filter.Float(100)),
		filter.Path("Company").Contains(filter.Str("Telco")),
	)); err != nil {
		t.Fatal(err)
	}

	got := c.Match(quote{Company: "Telco Mobiles", Price: 80})
	want := []string{"both", "cheap", "telco"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Match = %v, want %v", got, want)
	}

	got = c.Match(quote{Company: "Acme", Price: 80})
	if !reflect.DeepEqual(got, []string{"cheap"}) {
		t.Errorf("Match = %v", got)
	}

	got = c.Match(quote{Company: "Telco", Price: 200})
	if !reflect.DeepEqual(got, []string{"telco"}) {
		t.Errorf("Match = %v", got)
	}
}

func TestMatchTrueFilter(t *testing.T) {
	c := New()
	_ = c.Add("all", filter.True())
	if got := c.Match(quote{}); !reflect.DeepEqual(got, []string{"all"}) {
		t.Errorf("Match = %v", got)
	}
}

func TestRemove(t *testing.T) {
	c := New()
	_ = c.Add("a", filter.True())
	_ = c.Add("b", filter.True())
	c.Remove("a")
	if got := c.Match(quote{}); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Match = %v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestAddReplaces(t *testing.T) {
	c := New()
	_ = c.Add("s", filter.Path("Price").Lt(filter.Float(10)))
	_ = c.Add("s", filter.Path("Price").Gt(filter.Float(10)))
	if got := c.Match(quote{Price: 5}); len(got) != 0 {
		t.Errorf("old filter still active: %v", got)
	}
	if got := c.Match(quote{Price: 15}); !reflect.DeepEqual(got, []string{"s"}) {
		t.Errorf("Match = %v", got)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	c := New()
	if err := c.Add("bad", filter.And()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestStatsFactoring(t *testing.T) {
	c := New()
	// 50 subscriptions sharing one condition verbatim.
	shared := filter.Path("Company").Contains(filter.Str("Telco"))
	for i := 0; i < 50; i++ {
		f := filter.And(
			filter.Path("Company").Contains(filter.Str("Telco")),
			filter.Path("Price").Lt(filter.Float(float64(i))),
		)
		if err := c.Add(fmt.Sprintf("s%d", i), f); err != nil {
			t.Fatal(err)
		}
	}
	_ = shared
	st := c.Stats()
	if st.Subscriptions != 50 {
		t.Errorf("Subscriptions = %d", st.Subscriptions)
	}
	if st.TotalConds != 100 {
		t.Errorf("TotalConds = %d", st.TotalConds)
	}
	// 1 shared Contains + 50 distinct thresholds.
	if st.UniqueConds != 51 {
		t.Errorf("UniqueConds = %d, want 51", st.UniqueConds)
	}
	if st.IndexedConds != 50 {
		t.Errorf("IndexedConds = %d, want 50", st.IndexedConds)
	}
	// Price and Company only.
	if st.UniquePaths != 2 {
		t.Errorf("UniquePaths = %d, want 2", st.UniquePaths)
	}
}

func TestThresholdIndexAllOperators(t *testing.T) {
	c := New()
	_ = c.Add("lt", filter.Path("Price").Lt(filter.Float(100)))
	_ = c.Add("le", filter.Path("Price").Le(filter.Float(100)))
	_ = c.Add("gt", filter.Path("Price").Gt(filter.Float(100)))
	_ = c.Add("ge", filter.Path("Price").Ge(filter.Float(100)))
	_ = c.Add("eq", filter.Path("Price").Eq(filter.Float(100)))
	_ = c.Add("ne", filter.Path("Price").Ne(filter.Float(100)))

	tests := []struct {
		price float64
		want  []string
	}{
		{50, []string{"le", "lt", "ne"}},
		{100, []string{"eq", "ge", "le"}},
		{150, []string{"ge", "gt", "ne"}},
	}
	for _, tt := range tests {
		got := c.Match(quote{Price: tt.price})
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("price %v: Match = %v, want %v", tt.price, got, tt.want)
		}
	}
}

func TestMixedIntFloatThresholds(t *testing.T) {
	c := New()
	_ = c.Add("int", filter.Path("Amount").Lt(filter.Int(10)))
	_ = c.Add("float", filter.Path("Amount").Lt(filter.Float(9.5)))
	got := c.Match(quote{Amount: 9})
	if !reflect.DeepEqual(got, []string{"float", "int"}) {
		t.Errorf("Match = %v", got)
	}
}

func TestErrorPoisonsOnlyAffectedSubscriptions(t *testing.T) {
	c := New()
	_ = c.Add("good", filter.Path("Price").Ge(filter.Float(0)))
	_ = c.Add("missing", filter.Path("NoSuchField").Eq(filter.Int(1)))
	_ = c.Add("not-missing", filter.Not(filter.Path("NoSuchField").Eq(filter.Int(1))))
	got := c.Match(quote{Price: 1})
	// "missing" errors -> rejected. "not-missing" must ALSO be
	// rejected: filter.Evaluate propagates the error through Not
	// rather than negating an error into acceptance.
	if !reflect.DeepEqual(got, []string{"good"}) {
		t.Errorf("Match = %v, want [good]", got)
	}
}

// --- transparency property: Match ≡ MatchNaive on random filters ---

// randExpr builds a random filter over the quote fields.
func randExpr(r *rand.Rand, depth int) *filter.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return randLeaf(r)
	}
	switch r.Intn(4) {
	case 0:
		return filter.And(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return filter.Or(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return filter.Not(randExpr(r, depth-1))
	default:
		return randLeaf(r)
	}
}

func randLeaf(r *rand.Rand) *filter.Expr {
	ops := []filter.CmpOp{filter.OpEq, filter.OpNe, filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe}
	switch r.Intn(5) {
	case 0:
		return filter.Path("Price").Cmp(ops[r.Intn(len(ops))], filter.Float(float64(r.Intn(20))))
	case 1:
		return filter.Path("Amount").Cmp(ops[r.Intn(len(ops))], filter.Int(int64(r.Intn(20))))
	case 2:
		return filter.Path("Company").Contains(filter.Str(string(rune('A' + r.Intn(4)))))
	case 3:
		// Occasionally reference a missing field to exercise error
		// propagation.
		return filter.Path("Ghost").Eq(filter.Int(1))
	default:
		return filter.Path("Company").Eq(filter.Str(string(rune('A' + r.Intn(4)))))
	}
}

func TestCompoundTransparencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New()
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			if err := c.Add(fmt.Sprintf("s%02d", i), randExpr(r, 3)); err != nil {
				return false
			}
		}
		for trial := 0; trial < 10; trial++ {
			q := quote{
				Company: string(rune('A' + r.Intn(5))),
				Price:   float64(r.Intn(20)),
				Amount:  r.Intn(20),
			}
			if !reflect.DeepEqual(c.Match(q), c.MatchNaive(q)) {
				t.Logf("mismatch: seed=%d quote=%+v\n compound=%v\n naive=%v",
					seed, q, c.Match(q), c.MatchNaive(q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMatchAndMutate(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		_ = c.Add(fmt.Sprintf("s%d", i), filter.Path("Price").Lt(filter.Float(float64(i))))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = c.Add(fmt.Sprintf("x%d", i%5), filter.Path("Amount").Gt(filter.Int(int64(i))))
			c.Remove(fmt.Sprintf("x%d", (i+1)%5))
		}
	}()
	for i := 0; i < 200; i++ {
		_ = c.Match(quote{Price: float64(i % 10), Amount: i})
	}
	<-done
}

func BenchmarkCompoundVsNaive(b *testing.B) {
	for _, subs := range []int{10, 100, 1000} {
		c := New()
		r := rand.New(rand.NewSource(42))
		for i := 0; i < subs; i++ {
			f := filter.And(
				filter.Path("Company").Contains(filter.Str("Telco")),
				filter.Path("Price").Lt(filter.Float(float64(r.Intn(200)))),
			)
			if err := c.Add(fmt.Sprintf("s%d", i), f); err != nil {
				b.Fatal(err)
			}
		}
		q := quote{Company: "Telco Mobiles", Price: 80}
		b.Run(fmt.Sprintf("compound/subs=%d", subs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Match(q)
			}
		})
		b.Run(fmt.Sprintf("naive/subs=%d", subs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.MatchNaive(q)
			}
		})
	}
}

func TestMatchAppendReusesBuffer(t *testing.T) {
	c := New()
	_ = c.Add("cheap", filter.Path("Price").Lt(filter.Float(100)))
	_ = c.Add("telco", filter.Path("Company").Contains(filter.Str("Telco")))
	_ = c.Add("big", filter.Path("Amount").Gt(filter.Int(50)))

	events := []quote{
		{Company: "Telco Mobiles", Price: 80, Amount: 10},
		{Company: "Acme", Price: 200, Amount: 100},
		{Company: "Telco Fixed", Price: 120, Amount: 60},
		{Company: "Zeta", Price: 10, Amount: 1},
	}
	buf := make([]string, 0, 4)
	for _, ev := range events {
		buf = c.MatchAppend(ev, buf[:0])
		if want := c.MatchNaive(ev); !reflect.DeepEqual(append([]string(nil), buf...), want) {
			// MatchNaive returns nil for no matches; normalize.
			if !(len(buf) == 0 && len(want) == 0) {
				t.Errorf("MatchAppend(%+v) = %v, want %v", ev, buf, want)
			}
		}
	}
}

func TestMatchAppendPreservesPrefix(t *testing.T) {
	c := New()
	_ = c.Add("all", filter.True())
	out := c.MatchAppend(quote{}, []string{"sentinel"})
	if !reflect.DeepEqual(out, []string{"sentinel", "all"}) {
		t.Errorf("MatchAppend = %v, want [sentinel all]", out)
	}
}

// TestMatchSteadyStateAllocs pins the allocation-light property of the
// pooled scratch + flattened evaluator: with field-access paths (no
// reflect method calls) and a reused output buffer, steady-state
// matching performs zero heap allocations per event.
func TestMatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	c := New()
	for i := 0; i < 100; i++ {
		c2 := float64((i % 10) * 30)
		_ = c.Add(fmt.Sprintf("s%03d", i), filter.And(
			filter.Path("Price").Lt(filter.Float(c2+100)),
			filter.Path("Amount").Ge(filter.Int(int64(i%7))),
		))
	}
	var ev any = quote{Company: "Telco", Price: 75, Amount: 5}
	buf := make([]string, 0, 128)
	buf = c.MatchAppend(ev, buf[:0]) // warm scratch pool and caches
	allocs := testing.AllocsPerRun(200, func() {
		buf = c.MatchAppend(ev, buf[:0])
	})
	if allocs > 0 {
		t.Errorf("steady-state MatchAppend allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEvalProgShortCircuitOrder pins the in-order short-circuit
// semantics of the flattened evaluator against filter.Evaluate for the
// tricky error-interaction shapes: a false conjunct hides a later
// error, an error before the first false poisons the formula, and
// symmetrically for disjunctions.
func TestEvalProgShortCircuitOrder(t *testing.T) {
	errCond := filter.Path("Missing").Eq(filter.Int(1))
	cases := []struct {
		name string
		e    *filter.Expr
	}{
		{"and-false-then-err", filter.And(filter.False(), errCond)},
		{"and-err-then-false", filter.And(errCond, filter.False())},
		{"or-true-then-err", filter.Or(filter.True(), errCond)},
		{"or-err-then-true", filter.Or(errCond, filter.True())},
		{"not-err", filter.Not(errCond)},
		{"nested", filter.Or(filter.And(filter.True(), errCond), filter.True())},
	}
	ev := quote{Company: "Acme", Price: 10, Amount: 1}
	for _, tc := range cases {
		c := New()
		if err := c.Add("s", tc.e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := len(c.Match(ev)) == 1
		want, err := filter.Evaluate(tc.e, ev)
		want = want && err == nil
		if got != want {
			t.Errorf("%s: compound=%v, Evaluate=%v", tc.name, got, want)
		}
	}
}

func TestAddBatchMatchesIncrementalAdd(t *testing.T) {
	filters := map[string]*filter.Expr{
		"cheap": filter.Path("Price").Lt(filter.Float(100)),
		"telco": filter.Path("Company").Contains(filter.Str("Telco")),
		"both": filter.And(
			filter.Path("Price").Lt(filter.Float(100)),
			filter.Path("Company").Contains(filter.Str("Telco")),
		),
	}
	batch := New()
	if err := batch.AddBatch(filters); err != nil {
		t.Fatal(err)
	}
	incr := New()
	for id, f := range filters {
		if err := incr.Add(id, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range []quote{
		{Company: "Telco Mobiles", Price: 80},
		{Company: "Acme", Price: 80},
		{Company: "Telco", Price: 200},
	} {
		if got, want := batch.Match(ev), incr.Match(ev); !reflect.DeepEqual(got, want) {
			t.Errorf("AddBatch Match(%+v) = %v, incremental = %v", ev, got, want)
		}
	}
	if batch.Stats() != incr.Stats() {
		t.Errorf("Stats diverge: batch %+v, incremental %+v", batch.Stats(), incr.Stats())
	}

	if err := batch.AddBatch(map[string]*filter.Expr{"bad": {}}); err == nil {
		t.Error("AddBatch with invalid filter should fail")
	}
	if batch.Len() != 3 {
		t.Errorf("failed AddBatch mutated the set: Len = %d", batch.Len())
	}
}

func TestRemoveBatch(t *testing.T) {
	c := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		_ = c.Add(id, filter.True())
	}
	c.RemoveBatch([]string{"a", "c", "zzz-absent"})
	if got := c.Match(quote{}); !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Errorf("Match = %v", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLazyRecompileOncePerBurst(t *testing.T) {
	c := New()
	for i := 0; i < 50; i++ {
		_ = c.Add(fmt.Sprintf("s%02d", i), filter.Path("Price").Lt(filter.Float(float64(i))))
	}
	if got := c.Stats().Recompiles; got != 1 {
		t.Fatalf("recompiles after 50 Adds + Stats = %d, want 1", got)
	}
	// A mixed burst — batch removal plus individual add/removes — must
	// also compile exactly once, at the next Match.
	ids := make([]string, 0, 25)
	for i := 0; i < 25; i++ {
		ids = append(ids, fmt.Sprintf("s%02d", i))
	}
	c.RemoveBatch(ids)
	c.Remove("s30")
	_ = c.Add("extra", filter.True())
	_ = c.Match(quote{Price: 10})
	_ = c.Match(quote{Price: 20})
	if got := c.Stats().Recompiles; got != 2 {
		t.Errorf("recompiles after mutation burst = %d, want 2", got)
	}
	if got := c.Len(); got != 25 {
		t.Errorf("Len = %d, want 25", got)
	}
	// No-op mutations (removing absent IDs) must not dirty the plan.
	c.Remove("never-there")
	c.RemoveBatch([]string{"also-absent"})
	_ = c.Match(quote{})
	if got := c.Stats().Recompiles; got != 2 {
		t.Errorf("recompiles after no-op removals = %d, want 2", got)
	}
}

func TestRemoveBatchMatchesIterativeRemove(t *testing.T) {
	build := func() *Compound {
		c := New()
		for i := 0; i < 20; i++ {
			_ = c.Add(fmt.Sprintf("s%02d", i), filter.Path("Price").Lt(filter.Float(float64(i*50))))
		}
		return c
	}
	var drop []string
	for i := 0; i < 20; i += 2 {
		drop = append(drop, fmt.Sprintf("s%02d", i))
	}
	batch := build()
	batch.RemoveBatch(drop)
	iter := build()
	for _, id := range drop {
		iter.Remove(id)
	}
	for _, price := range []float64{25, 425, 975} {
		ev := quote{Price: price}
		if got, want := batch.Match(ev), iter.Match(ev); !reflect.DeepEqual(got, want) {
			t.Errorf("price %v: RemoveBatch Match = %v, iterative = %v", price, got, want)
		}
	}
}

func TestMatchAppendFailOpen(t *testing.T) {
	c := New()
	_ = c.Add("ok", filter.Path("Price").Lt(filter.Float(100)))
	_ = c.Add("broken", filter.Path("NoSuchField").Lt(filter.Float(100)))
	// An erroring term inside a disjunction poisons the formula in
	// strict mode but fails open here, even when it precedes a true term.
	_ = c.Add("mixed", filter.Or(
		filter.Path("NoSuchField").Lt(filter.Float(1)),
		filter.Path("Price").Lt(filter.Float(100)),
	))
	ev := quote{Company: "Acme", Price: 50}
	if got := c.Match(ev); !reflect.DeepEqual(got, []string{"ok"}) {
		t.Errorf("strict Match = %v, want [ok] (mixed's Or yields the leading error)", got)
	}
	if got := c.MatchAppendFailOpen(ev, nil); !reflect.DeepEqual(got, []string{"broken", "mixed", "ok"}) {
		t.Errorf("MatchAppendFailOpen = %v, want [broken mixed ok]", got)
	}
	// A formula that is plainly false stays excluded in both modes.
	_ = c.Add("no", filter.Path("Price").Gt(filter.Float(100)))
	if got := c.MatchAppendFailOpen(ev, nil); !reflect.DeepEqual(got, []string{"broken", "mixed", "ok"}) {
		t.Errorf("fail-open must not include false formulas: %v", got)
	}
}

// TestAccessorProgramStats pins the compile-step counters: one program
// per (event type, compilable unique path), and one fallback count per
// event for paths that cannot compile against the type.
func TestAccessorProgramStats(t *testing.T) {
	c := New()
	_ = c.Add("a", filter.Path("Price").Lt(filter.Float(100)))
	_ = c.Add("b", filter.Path("Missing").Eq(filter.Int(1))) // never compiles for quote

	ev := quote{Company: "Telco", Price: 50}
	for i := 0; i < 3; i++ {
		c.Match(ev)
	}
	st := c.Stats()
	if st.AccessorPrograms != 1 {
		t.Errorf("AccessorPrograms = %d, want 1 (Price compiled, Missing rejected)", st.AccessorPrograms)
	}
	if st.AccessorFallbacks != 3 {
		t.Errorf("AccessorFallbacks = %d, want 3 (one reflective Missing resolution per event)", st.AccessorFallbacks)
	}

	// A second event type compiles its own program table.
	c.Match(&quote{Company: "Telco", Price: 50})
	if st := c.Stats(); st.AccessorPrograms != 2 {
		t.Errorf("AccessorPrograms = %d after second root type, want 2", st.AccessorPrograms)
	}

	// Counters survive plan recompilation (they describe the matcher's
	// lifetime, not one plan).
	_ = c.Add("c", filter.Path("Amount").Ge(filter.Int(1)))
	c.Match(ev)
	if st := c.Stats(); st.AccessorPrograms < 4 {
		t.Errorf("AccessorPrograms = %d after recompile, want >= 4 (Price+Amount for value roots)", st.AccessorPrograms)
	}
}

// TestMethodPathMatchesNaive pins program/oracle agreement for accessor
// methods specifically (value receivers through boxed values), the
// paper's preferred encapsulated form.
func TestMethodPathMatchesNaive(t *testing.T) {
	c := New()
	for i := 0; i < 20; i++ {
		_ = c.Add(fmt.Sprintf("m%02d", i), filter.And(
			filter.Path("GetPrice").Lt(filter.Float(float64(i)*10)),
			filter.Path("GetCompany").Contains(filter.Str("Tel")),
		))
	}
	for _, ev := range []any{
		quote{Company: "Telco", Price: 55},
		quote{Company: "Acme", Price: 55},
		quote{Company: "Telco", Price: 500},
	} {
		got := c.Match(ev)
		want := c.MatchNaive(ev)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("Match(%+v) = %v, naive %v", ev, got, want)
		}
	}
}

// TestProgramTableGrowthCapped pins the heterogeneous-caller bound: one
// plan compiles program tables for at most maxProgramTypes distinct
// event root types; beyond that, matching stays correct through the
// reflective fallback (counted in AccessorFallbacks).
func TestProgramTableGrowthCapped(t *testing.T) {
	c := New()
	_ = c.Add("cheap", filter.Path("Price").Lt(filter.Float(100)))
	p := c.currentPlan()
	// Saturate the cap artificially (distinct real types are hard to
	// mint): the counter is what gates admission.
	p.programTypes.Store(maxProgramTypes)
	before := c.Stats().AccessorPrograms
	got := c.Match(quote{Company: "x", Price: 50})
	if len(got) != 1 || got[0] != "cheap" {
		t.Fatalf("over-cap Match = %v, want [cheap]", got)
	}
	st := c.Stats()
	if st.AccessorPrograms != before {
		t.Errorf("AccessorPrograms grew past the cap: %d -> %d", before, st.AccessorPrograms)
	}
	if st.AccessorFallbacks == 0 {
		t.Error("over-cap matching did not count reflective fallbacks")
	}
	if _, ok := p.programs.Load(reflect.TypeOf(quote{})); ok {
		t.Error("over-cap type was cached anyway")
	}
}
