package filter

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Marshal serializes an expression for migration to a filtering host —
// the mobility that motivates representing filters as trees rather than
// opaque closures (paper §3.3.3: "the migration of such code to foreign
// hosts" and "the factoring out of redundancies between filters of
// different subscribers gathered on individual hosts").
func Marshal(e *Expr) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("filter: marshal: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("filter: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// MarshalCanonical serializes Normalize(e): semantically identical
// filters — regardless of the order subscribers wrote their And/Or
// terms in — produce byte-identical encodings. Advertised filters use
// this form so that filtering hosts can deduplicate equal filters of
// different subscribers by comparing wire bytes alone (the routing
// plane's plan keys), without parsing.
func MarshalCanonical(e *Expr) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("filter: marshal: %w", err)
	}
	return Marshal(Normalize(e))
}

// Unmarshal reconstructs an expression received from the wire,
// validating it before use.
func Unmarshal(data []byte) (*Expr, error) {
	var e Expr
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("filter: unmarshal: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("filter: unmarshal: %w", err)
	}
	return &e, nil
}
