// Package filter implements content-based subscription filters as
// first-class, serializable expression trees — the paper's deferred code
// evaluation mechanism (LM4, §3.3.3–§3.3.4, §4.4.3).
//
// A filter produced by the paper's psc precompiler is represented by two
// tree-like constructs: an *invocation tree* (nested method invocations /
// attribute accesses on the filtered obvent, with leaves denoting
// conditions on the obtained values) and an *evaluation tree* (logical
// combinations of those leaves). This package realizes both in a single
// Expr tree: Cond nodes carry access Paths (the invocation tree), and
// And/Or/Not nodes form the evaluation tree above them.
//
// Expr values obey the paper's mobility restrictions by construction
// (§3.3.4): the only "invocations" are accessor-method calls and field
// reads on the filtered obvent, and the only other operands are constants
// of primitive type. An Expr can therefore be marshaled, shipped to a
// filtering host, factored against other subscribers' filters (package
// matching), and evaluated there — whereas an arbitrary Go closure (a
// LocalFilter) cannot leave the subscriber.
//
// Accessor methods named in a filter must be pure: a filtering host may
// resolve each accessor path once per event against a single shared
// clone and reuse the value across many subscriptions' conditions (the
// compound matcher does exactly that), so an accessor with observable
// side effects — advancing a cursor, mutating reachable state — yields
// unspecified matching results.
//
// Filters are built with a small DSL:
//
//	f := filter.And(
//		filter.Path("Price").Lt(filter.Float(100)),
//		filter.Path("Company").Contains(filter.Str("Telco")),
//	)
//
// which corresponds to the paper's running example
// "q.getPrice() < 100 && q.getCompany().indexOf("Telco") != -1".
package filter

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrInvalid is the sentinel wrapped by every Validate failure: a
// structurally malformed expression (bad arity, missing condition,
// invalid constant or operator). Callers at any layer can detect it
// with errors.Is without parsing messages.
var ErrInvalid = errors.New("filter: invalid expression")

// ExprKind discriminates Expr nodes.
type ExprKind int

// Expr node kinds.
const (
	KindConstTrue ExprKind = iota + 1
	KindConstFalse
	KindLeaf
	KindAnd
	KindOr
	KindNot
)

// Expr is a node of the evaluation tree. Expr trees are immutable after
// construction and safe to share.
type Expr struct {
	Kind     ExprKind
	Children []*Expr // And/Or (≥1), Not (exactly 1)
	Cond     *Cond   // Leaf only
}

// CmpOp is a leaf comparison operator.
type CmpOp int

// Comparison operators. String operators apply to string-valued
// operands only.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains  // strings.Contains(lhs, rhs)
	OpHasPrefix // strings.HasPrefix(lhs, rhs)
	OpHasSuffix // strings.HasSuffix(lhs, rhs)
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "contains"
	case OpHasPrefix:
		return "hasPrefix"
	case OpHasSuffix:
		return "hasSuffix"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Cond is a leaf condition comparing two operands: the invocation-tree
// leaf of the paper's §4.4.3.
type Cond struct {
	Op  CmpOp
	LHS Operand
	RHS Operand
}

// Operand is either an access path into the filtered obvent or a
// primitive constant — the only operand forms the paper's mobility
// restrictions admit (§3.3.4).
type Operand struct {
	// Path, when non-empty, is the dotted accessor path evaluated
	// against the obvent (invocation tree branch).
	Path []string
	// Const, when Path is empty, is the constant operand.
	Const Constant
}

// ConstKind discriminates constants.
type ConstKind int

// Constant kinds, mirroring the primitive types the paper's filter
// variable restrictions allow.
const (
	ConstInt ConstKind = iota + 1
	ConstFloat
	ConstString
	ConstBool
)

// Constant is a primitive constant operand.
type Constant struct {
	Kind ConstKind
	I    int64
	F    float64
	S    string
	B    bool
}

// --- Builder DSL ---

// PathExpr is an access path under construction; terminate it with a
// comparison to obtain an Expr.
type PathExpr struct {
	path []string
}

// Path starts an access path on the filtered obvent. Segments are dot
// separated; each segment names an exported niladic accessor method or
// an exported field (tried in that order), e.g. "Market.Price".
func Path(p string) PathExpr {
	return PathExpr{path: strings.Split(p, ".")}
}

func (p PathExpr) operand() Operand { return Operand{Path: p.path} }

// Cmp builds a comparison of the path against another operand.
func (p PathExpr) Cmp(op CmpOp, rhs Operandable) *Expr {
	return &Expr{Kind: KindLeaf, Cond: &Cond{Op: op, LHS: p.operand(), RHS: rhs.operand()}}
}

// Eq builds path == rhs.
func (p PathExpr) Eq(rhs Operandable) *Expr { return p.Cmp(OpEq, rhs) }

// Ne builds path != rhs.
func (p PathExpr) Ne(rhs Operandable) *Expr { return p.Cmp(OpNe, rhs) }

// Lt builds path < rhs.
func (p PathExpr) Lt(rhs Operandable) *Expr { return p.Cmp(OpLt, rhs) }

// Le builds path <= rhs.
func (p PathExpr) Le(rhs Operandable) *Expr { return p.Cmp(OpLe, rhs) }

// Gt builds path > rhs.
func (p PathExpr) Gt(rhs Operandable) *Expr { return p.Cmp(OpGt, rhs) }

// Ge builds path >= rhs.
func (p PathExpr) Ge(rhs Operandable) *Expr { return p.Cmp(OpGe, rhs) }

// Contains builds strings.Contains(path, rhs).
func (p PathExpr) Contains(rhs Operandable) *Expr { return p.Cmp(OpContains, rhs) }

// HasPrefix builds strings.HasPrefix(path, rhs).
func (p PathExpr) HasPrefix(rhs Operandable) *Expr { return p.Cmp(OpHasPrefix, rhs) }

// HasSuffix builds strings.HasSuffix(path, rhs).
func (p PathExpr) HasSuffix(rhs Operandable) *Expr { return p.Cmp(OpHasSuffix, rhs) }

// Operandable is anything usable as a comparison operand.
type Operandable interface {
	operand() Operand
}

// constant wraps a Constant as an Operandable.
type constant struct{ c Constant }

func (c constant) operand() Operand { return Operand{Const: c.c} }

// Int builds an integer constant operand.
func Int(v int64) Operandable { return constant{Constant{Kind: ConstInt, I: v}} }

// Float builds a float constant operand.
func Float(v float64) Operandable { return constant{Constant{Kind: ConstFloat, F: v}} }

// Str builds a string constant operand.
func Str(v string) Operandable { return constant{Constant{Kind: ConstString, S: v}} }

// Bool builds a boolean constant operand.
func Bool(v bool) Operandable { return constant{Constant{Kind: ConstBool, B: v}} }

// True is the filter accepting every obvent — the paper's
// "subscribe (T t) { return true; }".
func True() *Expr { return &Expr{Kind: KindConstTrue} }

// False is the filter rejecting every obvent.
func False() *Expr { return &Expr{Kind: KindConstFalse} }

// And combines sub-filters conjunctively.
func And(children ...*Expr) *Expr {
	return &Expr{Kind: KindAnd, Children: children}
}

// Or combines sub-filters disjunctively.
func Or(children ...*Expr) *Expr {
	return &Expr{Kind: KindOr, Children: children}
}

// Not negates a sub-filter.
func Not(child *Expr) *Expr {
	return &Expr{Kind: KindNot, Children: []*Expr{child}}
}

// --- Canonical form ---

// Canon returns a canonical string rendering of the expression, used as
// a common-subexpression key when factoring filters of different
// subscribers into a compound filter (paper §2.3.2, §4.4.3). Two
// expressions with equal Canon are semantically identical: And/Or
// children are rendered in sorted order.
func (e *Expr) Canon() string {
	var b strings.Builder
	e.canon(&b)
	return b.String()
}

func (e *Expr) canon(b *strings.Builder) {
	switch e.Kind {
	case KindConstTrue:
		b.WriteString("true")
	case KindConstFalse:
		b.WriteString("false")
	case KindLeaf:
		b.WriteString(e.Cond.Canon())
	case KindAnd, KindOr:
		if e.Kind == KindAnd {
			b.WriteString("and(")
		} else {
			b.WriteString("or(")
		}
		keys := make([]string, len(e.Children))
		for i, c := range e.Children {
			keys[i] = c.Canon()
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
		}
		b.WriteByte(')')
	case KindNot:
		b.WriteString("not(")
		e.Children[0].canon(b)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "invalid(%d)", e.Kind)
	}
}

// Normalize returns an expression semantically equivalent to e in
// canonical shape: And/Or child lists are sorted by canonical form with
// exact duplicates dropped. Two filters that differ only in the order
// (or repetition) of their conjuncts/disjuncts normalize to structurally
// identical trees, which therefore marshal to identical bytes
// (MarshalCanonical) — the property the routing plane's plan keys rely
// on. The input is never mutated: reordered nodes are rebuilt, and
// subtrees that are already canonical are shared.
//
// Reordering can change which non-delivering outcome (false vs
// evaluation error) a formula reports, but never whether it delivers:
// true requires every And child true / some Or child true with all
// earlier children false, and those child outcomes are order-independent.
func Normalize(e *Expr) *Expr {
	switch e.Kind {
	case KindAnd, KindOr:
		type keyed struct {
			key   string
			child *Expr
		}
		ks := make([]keyed, 0, len(e.Children))
		for _, c := range e.Children {
			// Key on the normalized child so that terms that differ only
			// pre-normalization (e.g. or(a,a) vs or(a)) still deduplicate.
			n := Normalize(c)
			ks = append(ks, keyed{key: n.Canon(), child: n})
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
		children := make([]*Expr, 0, len(ks))
		for i, k := range ks {
			if i > 0 && k.key == ks[i-1].key {
				continue // exact duplicate term
			}
			children = append(children, k.child)
		}
		return &Expr{Kind: e.Kind, Children: children}
	case KindNot:
		return &Expr{Kind: KindNot, Children: []*Expr{Normalize(e.Children[0])}}
	default:
		// Leaves and constants are already canonical and immutable.
		return e
	}
}

// Canon returns the canonical rendering of a leaf condition.
func (c *Cond) Canon() string {
	return c.LHS.canon() + string(rune(0)) + c.Op.String() + string(rune(0)) + c.RHS.canon()
}

func (o Operand) canon() string {
	if len(o.Path) > 0 {
		return "path:" + strings.Join(o.Path, ".")
	}
	switch o.Const.Kind {
	case ConstInt:
		return "i:" + strconv.FormatInt(o.Const.I, 10)
	case ConstFloat:
		return "f:" + strconv.FormatFloat(o.Const.F, 'g', -1, 64)
	case ConstString:
		return "s:" + strconv.Quote(o.Const.S)
	case ConstBool:
		return "b:" + strconv.FormatBool(o.Const.B)
	default:
		return "invalid"
	}
}

// String renders the expression in a human-readable infix form.
func (e *Expr) String() string {
	switch e.Kind {
	case KindConstTrue:
		return "true"
	case KindConstFalse:
		return "false"
	case KindLeaf:
		return fmt.Sprintf("%s %s %s", e.Cond.LHS, e.Cond.Op, e.Cond.RHS)
	case KindAnd, KindOr:
		sep := " && "
		if e.Kind == KindOr {
			sep = " || "
		}
		parts := make([]string, len(e.Children))
		for i, c := range e.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	case KindNot:
		return "!" + e.Children[0].String()
	default:
		return fmt.Sprintf("invalid(%d)", e.Kind)
	}
}

// String renders an operand.
func (o Operand) String() string {
	if len(o.Path) > 0 {
		return strings.Join(o.Path, ".")
	}
	switch o.Const.Kind {
	case ConstInt:
		return strconv.FormatInt(o.Const.I, 10)
	case ConstFloat:
		return strconv.FormatFloat(o.Const.F, 'g', -1, 64)
	case ConstString:
		return strconv.Quote(o.Const.S)
	case ConstBool:
		return strconv.FormatBool(o.Const.B)
	default:
		return "invalid"
	}
}

// Validate checks structural well-formedness: children arities, leaf
// conditions present, and operands being either paths or valid
// constants. A filter received from the wire should be validated before
// evaluation.
func (e *Expr) Validate() error {
	if e == nil {
		return fmt.Errorf("%w: nil expression", ErrInvalid)
	}
	switch e.Kind {
	case KindConstTrue, KindConstFalse:
		return nil
	case KindLeaf:
		if e.Cond == nil {
			return fmt.Errorf("%w: leaf without condition", ErrInvalid)
		}
		for _, o := range []Operand{e.Cond.LHS, e.Cond.RHS} {
			if len(o.Path) == 0 {
				switch o.Const.Kind {
				case ConstInt, ConstFloat, ConstString, ConstBool:
				default:
					return fmt.Errorf("%w: invalid constant kind %d", ErrInvalid, o.Const.Kind)
				}
			}
			for _, seg := range o.Path {
				if seg == "" {
					return fmt.Errorf("%w: empty path segment", ErrInvalid)
				}
			}
		}
		if e.Cond.Op < OpEq || e.Cond.Op > OpHasSuffix {
			return fmt.Errorf("%w: invalid operator %d", ErrInvalid, e.Cond.Op)
		}
		return nil
	case KindAnd, KindOr:
		if len(e.Children) == 0 {
			return fmt.Errorf("%w: %v with no children", ErrInvalid, e.Kind)
		}
		for _, c := range e.Children {
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	case KindNot:
		if len(e.Children) != 1 {
			return fmt.Errorf("%w: not with %d children", ErrInvalid, len(e.Children))
		}
		return e.Children[0].Validate()
	default:
		return fmt.Errorf("%w: invalid node kind %d", ErrInvalid, e.Kind)
	}
}
