package filter

import (
	"strings"
	"testing"
	"testing/quick"
)

// stockQuote mirrors the paper's Figure 2 obvent, with unexported fields
// behind accessors to exercise encapsulation preservation (LP2).
type stockQuote struct {
	company string
	price   float64
	amount  int
}

func (q stockQuote) Company() string { return q.company }
func (q stockQuote) Price() float64  { return q.price }
func (q stockQuote) Amount() int     { return q.amount }

// plainQuote uses exported fields (implicit accessors).
type plainQuote struct {
	Company string
	Price   float64
	Active  bool
}

// nestedQuote exercises multi-segment paths.
type nestedQuote struct {
	Inner stockQuote
}

func (n nestedQuote) Quote() stockQuote { return n.Inner }

// telcoFilter is the paper's §2.3.3 example filter:
// price < 100 && company contains "Telco".
func telcoFilter() *Expr {
	return And(
		Path("Price").Lt(Float(100)),
		Path("Company").Contains(Str("Telco")),
	)
}

func TestPaperExampleFilter(t *testing.T) {
	f := telcoFilter()
	tests := []struct {
		name string
		q    stockQuote
		want bool
	}{
		{"paper's published quote", stockQuote{"Telco Mobiles", 80, 10}, true},
		{"price too high", stockQuote{"Telco Mobiles", 150, 10}, false},
		{"wrong company", stockQuote{"Acme", 80, 10}, false},
		{"boundary price", stockQuote{"Telco", 100, 1}, false},
		{"just under", stockQuote{"Telco", 99.99, 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Evaluate(f, tt.q)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if got != tt.want {
				t.Errorf("Evaluate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAccessorPreferredOverField(t *testing.T) {
	// LP2: accessors tried before fields so encapsulated state stays
	// encapsulated.
	got, err := Evaluate(Path("Company").Eq(Str("Telco")), stockQuote{company: "Telco"})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("accessor method not used")
	}
}

func TestFieldAccess(t *testing.T) {
	got, err := Evaluate(Path("Price").Ge(Float(10)), plainQuote{Price: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("field access failed")
	}
}

func TestPointerObvent(t *testing.T) {
	got, err := Evaluate(Path("Price").Lt(Float(100)), &stockQuote{price: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("pointer obvent evaluation failed")
	}
}

func TestNestedPath(t *testing.T) {
	n := nestedQuote{Inner: stockQuote{company: "Telco", price: 42}}
	for _, path := range []string{"Quote.Price", "Inner.Price"} {
		got, err := Evaluate(Path(path).Eq(Float(42)), n)
		if err != nil {
			t.Fatalf("path %s: %v", path, err)
		}
		if !got {
			t.Errorf("path %s did not resolve", path)
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	q := plainQuote{Company: "X", Price: 5, Active: true}
	tests := []struct {
		name string
		e    *Expr
		want bool
	}{
		{"true", True(), true},
		{"false", False(), false},
		{"not", Not(False()), true},
		{"and short circuit", And(False(), Path("Missing").Eq(Int(1))), false},
		{"or short circuit", Or(True(), Path("Missing").Eq(Int(1))), true},
		{"or both false", Or(False(), Path("Price").Gt(Float(10))), false},
		{"bool eq", Path("Active").Eq(Bool(true)), true},
		{"bool ne", Path("Active").Ne(Bool(true)), false},
		{"nested and/or", And(Or(False(), True()), Not(And(True(), False()))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Evaluate(tt.e, q)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStringOperators(t *testing.T) {
	q := plainQuote{Company: "Telco Mobiles"}
	tests := []struct {
		e    *Expr
		want bool
	}{
		{Path("Company").Contains(Str("Telco")), true},
		{Path("Company").Contains(Str("telco")), false},
		{Path("Company").HasPrefix(Str("Telco")), true},
		{Path("Company").HasSuffix(Str("Mobiles")), true},
		{Path("Company").HasSuffix(Str("Telco")), false},
		{Path("Company").Lt(Str("Z")), true},
		{Path("Company").Eq(Str("Telco Mobiles")), true},
	}
	for _, tt := range tests {
		got, err := Evaluate(tt.e, q)
		if err != nil {
			t.Fatalf("%s: %v", tt.e, err)
		}
		if got != tt.want {
			t.Errorf("%s = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestNumericPromotion(t *testing.T) {
	type mixed struct {
		I int
		U uint16
		F float32
	}
	m := mixed{I: 5, U: 7, F: 2.5}
	tests := []struct {
		e    *Expr
		want bool
	}{
		{Path("I").Lt(Float(5.5)), true},
		{Path("I").Eq(Int(5)), true},
		{Path("U").Gt(Int(6)), true},
		{Path("F").Le(Float(2.5)), true},
		{Path("F").Gt(Int(2)), true},
	}
	for _, tt := range tests {
		got, err := Evaluate(tt.e, m)
		if err != nil {
			t.Fatalf("%s: %v", tt.e, err)
		}
		if got != tt.want {
			t.Errorf("%s = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestEvaluationErrors(t *testing.T) {
	q := plainQuote{}
	tests := []struct {
		name string
		e    *Expr
	}{
		{"missing accessor", Path("NoSuch").Eq(Int(1))},
		{"type mismatch", Path("Company").Eq(Int(1))},
		{"string op on number", Path("Price").Contains(Str("x"))},
		{"ordering on bool", Path("Active").Lt(Bool(false))},
		{"path through non-struct", Path("Price.Deep").Eq(Int(1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Evaluate(tt.e, q)
			if err == nil {
				t.Fatal("expected error")
			}
			if got {
				t.Error("errored filter must reject")
			}
		})
	}
}

func TestPathToPathComparison(t *testing.T) {
	type spread struct {
		Bid float64
		Ask float64
	}
	got, err := Evaluate(Path("Bid").Lt(Path("Ask")), spread{Bid: 99, Ask: 101})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("path-to-path comparison failed")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := And(
		telcoFilter(),
		Or(Not(Path("Amount").Eq(Int(0))), Path("Company").HasPrefix(Str("T"))),
	)
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canon() != f.Canon() {
		t.Errorf("canonical forms differ:\n%s\n%s", back.Canon(), f.Canon())
	}
	// Behavior preserved.
	q := stockQuote{"Telco Mobiles", 80, 10}
	a, err := Evaluate(f, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(back, q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("marshaled filter behaves differently")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("garbage must fail")
	}
	// A structurally invalid expression (leaf without cond) must fail
	// validation even if it gob-decodes.
	bad := &Expr{Kind: KindLeaf}
	if err := bad.Validate(); err == nil {
		t.Error("invalid expr must fail validation")
	}
	if _, err := Marshal(bad); err == nil {
		t.Error("marshal must validate")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		e    *Expr
		ok   bool
	}{
		{"true", True(), true},
		{"paper filter", telcoFilter(), true},
		{"empty and", And(), false},
		{"not arity", &Expr{Kind: KindNot}, false},
		{"bad const kind", &Expr{Kind: KindLeaf, Cond: &Cond{Op: OpEq}}, false},
		{"empty path segment", Path("").Eq(Int(1)), false},
		{"bad op", &Expr{Kind: KindLeaf, Cond: &Cond{Op: CmpOp(99), LHS: Operand{Path: []string{"A"}}, RHS: Operand{Path: []string{"B"}}}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.e.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestCanonOrderIndependence(t *testing.T) {
	a := And(Path("A").Eq(Int(1)), Path("B").Eq(Int(2)))
	b := And(Path("B").Eq(Int(2)), Path("A").Eq(Int(1)))
	if a.Canon() != b.Canon() {
		t.Error("And children order must not affect canonical form")
	}
	c := Or(Path("A").Eq(Int(1)), Path("B").Eq(Int(2)))
	if a.Canon() == c.Canon() {
		t.Error("And and Or must differ canonically")
	}
}

func TestCanonDistinguishesConstants(t *testing.T) {
	if Path("A").Eq(Int(1)).Canon() == Path("A").Eq(Float(1)).Canon() {
		t.Error("int and float constants must differ canonically")
	}
	if Path("A").Eq(Str("1")).Canon() == Path("A").Eq(Int(1)).Canon() {
		t.Error("string and int constants must differ canonically")
	}
}

func TestEvaluatePropertyThresholdConsistency(t *testing.T) {
	// For any price and threshold: exactly one of (p < t), (p == t),
	// (p > t) holds via the filter evaluator.
	f := func(price, threshold float64) bool {
		q := stockQuote{price: price}
		lt, err1 := Evaluate(Path("Price").Lt(Float(threshold)), q)
		eq, err2 := Evaluate(Path("Price").Eq(Float(threshold)), q)
		gt, err3 := Evaluate(Path("Price").Gt(Float(threshold)), q)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		n := 0
		for _, b := range []bool{lt, eq, gt} {
			if b {
				n++
			}
		}
		if price != price || threshold != threshold { // NaN involved
			return n == 0 || n == 1
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateNotInvolution(t *testing.T) {
	f := func(price float64, threshold float64) bool {
		q := stockQuote{price: price}
		base := Path("Price").Lt(Float(threshold))
		a, err1 := Evaluate(base, q)
		b, err2 := Evaluate(Not(Not(base)), q)
		if err1 != nil || err2 != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	f := telcoFilter()
	s := f.String()
	for _, want := range []string{"Price < 100", "Company contains", "Telco", "&&"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNormalizeOrderAndDuplicateInsensitive(t *testing.T) {
	a := Path("Price").Lt(Float(100))
	b := Path("Company").Contains(Str("Telco"))
	c := Path("Amount").Ge(Int(5))

	f1 := And(a, Or(b, c))
	f2 := And(Or(c, b, b), a, a)
	m1, err := MarshalCanonical(f1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MarshalCanonical(f2)
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Errorf("canonical bytes differ for reordered/duplicated terms:\n%x\n%x", m1, m2)
	}
	if m3, _ := MarshalCanonical(And(a, b)); string(m3) == string(m1) {
		t.Error("distinct filters share canonical bytes")
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	a := Path("Price").Lt(Float(100))
	b := Path("Amount").Ge(Int(5))
	f := Or(b, a) // canonical order would swap the children
	_ = Normalize(f)
	if f.Children[0] != b || f.Children[1] != a {
		t.Error("Normalize mutated its input's child order")
	}
}

func TestNormalizePreservesDelivery(t *testing.T) {
	quotes := []plainQuote{
		{Company: "Telco Mobiles", Price: 80, Active: true},
		{Company: "Acme", Price: 80},
		{Company: "Telco", Price: 200},
		{Company: "", Price: 0},
	}
	exprs := []*Expr{
		telcoFilter(),
		Or(Path("Price").Lt(Float(100)), Path("Price").Gt(Float(150)), Path("Company").Eq(Str("Acme"))),
		Not(And(Path("Active").Eq(Bool(true)), Path("Price").Ge(Float(50)))),
		And(Or(Path("Company").HasPrefix(Str("Tel")), Path("Company").HasSuffix(Str("me"))), True()),
	}
	for i, e := range exprs {
		n := Normalize(e)
		if err := n.Validate(); err != nil {
			t.Fatalf("expr %d: normalized form invalid: %v", i, err)
		}
		for _, q := range quotes {
			gotOK, gotErr := Evaluate(n, q)
			wantOK, wantErr := Evaluate(e, q)
			if (gotOK && gotErr == nil) != (wantOK && wantErr == nil) {
				t.Errorf("expr %d on %+v: normalized delivers %v, original %v", i, q, gotOK && gotErr == nil, wantOK && wantErr == nil)
			}
		}
	}
}

func TestMarshalCanonicalRoundTrips(t *testing.T) {
	f := And(Path("Price").Lt(Float(100)), Path("Company").Contains(Str("Telco")))
	data, err := MarshalCanonical(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Canon() != f.Canon() {
		t.Errorf("round trip changed semantics: %q vs %q", got.Canon(), f.Canon())
	}
}
