package filter

import (
	"fmt"
	"reflect"
	"strings"
)

// Evaluate applies the filter to an obvent (any struct or pointer to
// struct). It returns the boolean outcome; an evaluation error (missing
// accessor, type mismatch) makes the filter reject the obvent and is
// reported for diagnostics — a malformed remote filter must never crash
// a filtering host.
//
// Evaluate resolves each path occurrence independently through
// reflection; it is the semantic oracle. Hot paths (the compound
// matcher, package matching) instead resolve each unique path once per
// event through a compiled accessor program (package accessor).
func Evaluate(e *Expr, obj any) (bool, error) {
	ev := evaluator{obj: reflect.ValueOf(obj)}
	return ev.eval(e)
}

// evaluator carries the reflected obvent through one evaluation.
type evaluator struct {
	obj reflect.Value
}

// ValueOf, Compare and ResolveValue are exported so that package
// matching can factor conditions across subscriptions while reusing the
// exact evaluation semantics of this package.

func (ev *evaluator) eval(e *Expr) (bool, error) {
	switch e.Kind {
	case KindConstTrue:
		return true, nil
	case KindConstFalse:
		return false, nil
	case KindLeaf:
		return ev.evalCond(e.Cond)
	case KindAnd:
		for _, c := range e.Children {
			ok, err := ev.eval(c)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case KindOr:
		for _, c := range e.Children {
			ok, err := ev.eval(c)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case KindNot:
		ok, err := ev.eval(e.Children[0])
		if err != nil {
			return false, err
		}
		return !ok, nil
	default:
		return false, fmt.Errorf("filter: invalid node kind %d", e.Kind)
	}
}

func (ev *evaluator) evalCond(c *Cond) (bool, error) {
	lhs, err := ev.resolve(c.LHS)
	if err != nil {
		return false, err
	}
	rhs, err := ev.resolve(c.RHS)
	if err != nil {
		return false, err
	}
	return Compare(c.Op, lhs, rhs)
}

// resolve produces the concrete value of an operand.
func (ev *evaluator) resolve(o Operand) (Constant, error) {
	if len(o.Path) == 0 {
		return o.Const, nil
	}
	rv, err := ResolvePath(ev.obj, o.Path)
	if err != nil {
		return Constant{}, err
	}
	v, err := ValueOf(rv)
	if err != nil {
		return Constant{}, fmt.Errorf("filter: path %s: %w", strings.Join(o.Path, "."), err)
	}
	return v, nil
}

// ResolveValue resolves an accessor path on an object to a primitive
// value in one step.
func ResolveValue(obj any, path []string) (Constant, error) {
	rv, err := ResolvePath(reflect.ValueOf(obj), path)
	if err != nil {
		return Constant{}, err
	}
	return ValueOf(rv)
}

// ResolvePath walks an accessor path on a reflected object: each segment
// names an exported niladic single-result method (tried on both the
// value and its address) or an exported field. This realizes the paper's
// invocation-tree semantics — "the only method invocations allowed in a
// filter are (nested) invocations on its variables" (§3.3.4) — while
// preserving encapsulation (LP2): accessors are tried before raw fields.
func ResolvePath(v reflect.Value, path []string) (reflect.Value, error) {
	cur := v
	for _, seg := range path {
		next, err := resolveSegment(cur, seg)
		if err != nil {
			return reflect.Value{}, err
		}
		cur = next
	}
	return cur, nil
}

func resolveSegment(v reflect.Value, seg string) (reflect.Value, error) {
	if !v.IsValid() {
		return reflect.Value{}, fmt.Errorf("filter: segment %q on invalid value", seg)
	}
	if v.Kind() == reflect.Interface && v.IsNil() {
		// MethodByName on a nil interface value panics inside reflect;
		// like every other data-dependent resolution failure this must
		// reject the obvent, not crash the filtering host.
		return reflect.Value{}, fmt.Errorf("filter: segment %q on nil interface", seg)
	}
	// Accessor method, with a single name lookup: when the value is
	// addressable (and neither a pointer nor an interface — a pointer's
	// method set is already complete and a pointer-to-interface type has
	// none) the lookup goes through its pointer type, whose method set
	// contains both value- and pointer-receiver accessors; otherwise
	// through the value's own.
	if v.Kind() != reflect.Pointer && v.Kind() != reflect.Interface && v.CanAddr() {
		if m := v.Addr().MethodByName(seg); m.IsValid() {
			return callAccessor(m, seg)
		}
	} else if m := v.MethodByName(seg); m.IsValid() {
		return callAccessor(m, seg)
	}
	// Dereference pointers for field access / value-method retry. Only a
	// multi-level pointer can gain a method here: one level's full method
	// set was already probed above.
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return reflect.Value{}, fmt.Errorf("filter: segment %q on nil pointer", seg)
		}
		v = v.Elem()
		if v.Kind() == reflect.Interface && v.IsNil() {
			// Same reflect panic hazard as the entry guard, reachable
			// through a pointer-to-interface field.
			return reflect.Value{}, fmt.Errorf("filter: segment %q on nil interface", seg)
		}
		if m := v.MethodByName(seg); m.IsValid() {
			return callAccessor(m, seg)
		}
	}
	if v.Kind() != reflect.Struct {
		return reflect.Value{}, fmt.Errorf("filter: segment %q on non-struct %s", seg, v.Kind())
	}
	f, ok := v.Type().FieldByName(seg)
	if !ok {
		return reflect.Value{}, fmt.Errorf("filter: no accessor or field %q on %s", seg, v.Type())
	}
	// FieldByIndexErr, not FieldByName: a promoted field reached through
	// a nil embedded pointer must reject the obvent like any other
	// resolution failure, not panic the filtering host.
	fv, err := v.FieldByIndexErr(f.Index)
	if err != nil {
		return reflect.Value{}, fmt.Errorf("filter: segment %q: %w", seg, err)
	}
	return fv, nil
}

func callAccessor(m reflect.Value, seg string) (rv reflect.Value, err error) {
	mt := m.Type()
	if mt.NumIn() != 0 || mt.NumOut() != 1 {
		return reflect.Value{}, fmt.Errorf("filter: accessor %q must be niladic with one result", seg)
	}
	// An accessor that panics (typically a promoted method reached
	// through a nil embedded pointer) rejects the obvent like any other
	// resolution failure: a data-dependent panic must never crash a
	// filtering host.
	defer func() {
		if r := recover(); r != nil {
			rv, err = reflect.Value{}, fmt.Errorf("filter: accessor %q panicked: %v", seg, r)
		}
	}()
	return m.Call(nil)[0], nil
}

// ValueOf normalizes a reflected result to a primitive value, enforcing
// the paper's restriction of filter values to primitives and strings.
func ValueOf(rv reflect.Value) (Constant, error) {
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return Constant{}, fmt.Errorf("nil result")
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return Constant{Kind: ConstInt, I: rv.Int()}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := rv.Uint()
		if u > 1<<62 {
			return Constant{}, fmt.Errorf("unsigned value %d overflows filter integer", u)
		}
		return Constant{Kind: ConstInt, I: int64(u)}, nil
	case reflect.Float32, reflect.Float64:
		return Constant{Kind: ConstFloat, F: rv.Float()}, nil
	case reflect.String:
		return Constant{Kind: ConstString, S: rv.String()}, nil
	case reflect.Bool:
		return Constant{Kind: ConstBool, B: rv.Bool()}, nil
	default:
		return Constant{}, fmt.Errorf("non-primitive result kind %s", rv.Kind())
	}
}

// Compare applies op to two primitive values with numeric promotion
// (int vs float compare as floats).
func Compare(op CmpOp, a, b Constant) (bool, error) {
	switch op {
	case OpContains, OpHasPrefix, OpHasSuffix:
		if a.Kind != ConstString || b.Kind != ConstString {
			return false, fmt.Errorf("filter: %s requires string operands", op)
		}
		switch op {
		case OpContains:
			return strings.Contains(a.S, b.S), nil
		case OpHasPrefix:
			return strings.HasPrefix(a.S, b.S), nil
		default:
			return strings.HasSuffix(a.S, b.S), nil
		}
	}

	switch {
	case a.Kind == ConstString && b.Kind == ConstString:
		return compareOrdered(op, strings.Compare(a.S, b.S))
	case a.Kind == ConstBool && b.Kind == ConstBool:
		switch op {
		case OpEq:
			return a.B == b.B, nil
		case OpNe:
			return a.B != b.B, nil
		default:
			return false, fmt.Errorf("filter: %s not defined on booleans", op)
		}
	case isNumeric(a.Kind) && isNumeric(b.Kind):
		if a.Kind == ConstInt && b.Kind == ConstInt {
			switch {
			case a.I < b.I:
				return compareOrdered(op, -1)
			case a.I > b.I:
				return compareOrdered(op, 1)
			default:
				return compareOrdered(op, 0)
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return compareOrdered(op, -1)
		case af > bf:
			return compareOrdered(op, 1)
		default:
			return compareOrdered(op, 0)
		}
	default:
		return false, fmt.Errorf("filter: type mismatch: %v vs %v", a.Kind, b.Kind)
	}
}

func isNumeric(k ConstKind) bool { return k == ConstInt || k == ConstFloat }

// AsFloat returns the numeric value as a float64 (integers are widened).
func (v Constant) AsFloat() float64 {
	if v.Kind == ConstInt {
		return float64(v.I)
	}
	return v.F
}

// compareOrdered maps a three-way comparison to the operator outcome.
func compareOrdered(op CmpOp, cmp int) (bool, error) {
	switch op {
	case OpEq:
		return cmp == 0, nil
	case OpNe:
		return cmp != 0, nil
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("filter: operator %s not applicable", op)
	}
}
