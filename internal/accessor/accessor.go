// Package accessor compiles filter accessor paths against concrete Go
// types, turning the per-event reflection of filter.ResolvePath — a
// MethodByName / FieldByName walk per path segment per event — into a
// flat program of index-based steps (Field(i), Elem, Method(i)) built
// once per (event type, path) pair.
//
// The paper's content-based model evaluates accessor-path predicates
// against every published obvent (§3.3.4); after the compound matcher
// factored redundant conditions (PR 1) and the routing plane hoisted
// filters to publishers (PR 3), name-based reflection was the dominant
// per-event cost on both hot paths. A type's layout never changes, so
// everything name-based about a path — which field index chain or
// method index a segment resolves to, where pointers must be
// dereferenced, whether the pointer method set is reachable — is a
// function of the root type alone and can be decided once.
//
// Compile simulates filter.ResolvePath at the type level and emits the
// step sequence ResolvePath would have taken; Program.Resolve replays
// it with no name lookups and, for pure field/deref paths, zero heap
// allocations (pinned by test). Accessor-method segments still pay one
// reflect Call. A path that cannot compile (missing segment, non-struct
// hop, malformed accessor signature) reports an error at compile time;
// callers fall back to per-event ResolvePath, which fails the same way,
// so fail-open semantics are byte-for-byte unchanged — equivalence with
// the reflective oracle is property-tested over randomized values and
// paths.
package accessor

import (
	"fmt"
	"reflect"
	"strings"

	"govents/internal/filter"
)

// Program is one compiled accessor path, valid for exactly one root
// type (the dynamic type of the event as handed to reflect.ValueOf).
// Programs are immutable and safe for concurrent use.
type Program struct {
	root  reflect.Type
	path  string
	steps []step
}

// stepOp discriminates program steps.
type stepOp uint8

const (
	// opField replaces the current value with its idx-th field.
	opField stepOp = iota + 1
	// opDeref replaces the current pointer with its pointee; a nil
	// pointer aborts resolution with the step's preallocated error.
	opDeref
	// opMethod calls the idx-th method of the current value's own
	// method set and continues with its single result.
	opMethod
	// opAddrMethod calls the idx-th method of the current value's
	// pointer type (the value is addressable at this point by
	// construction) and continues with its single result.
	opAddrMethod
)

// step is one instruction of a compiled path.
type step struct {
	op  stepOp
	idx int
	// err is the step's resolution failure, preallocated at compile time
	// so the nil-pointer fail path does not allocate per event.
	err error
}

// Compile builds the accessor program for path against root, the
// dynamic type of the values the program will resolve. It mirrors
// filter.ResolvePath segment by segment: accessor methods are preferred
// over fields, the pointer method set is used wherever ResolvePath
// would reach it through CanAddr, pointers are dereferenced for field
// access, and embedded (promoted) fields expand to their full index
// chain with intermediate dereferences. A path that ResolvePath could
// never resolve for this type fails here instead, once, with an error;
// resolution of a compiled program can then only fail on value-dependent
// conditions (nil pointers along the path).
func Compile(root reflect.Type, path []string) (*Program, error) {
	if root == nil {
		return nil, fmt.Errorf("accessor: nil root type")
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("accessor: empty path")
	}
	p := &Program{root: root, path: strings.Join(path, ".")}
	t := root
	// addressable tracks whether the current value will be addressable
	// at run time. reflect.ValueOf output never is; dereferencing a
	// pointer always yields an addressable value; field access preserves
	// the struct's addressability; method results are fresh and never
	// addressable. This is decidable at the type level, which is what
	// lets the pointer-method-set decision compile.
	addressable := false
	for _, seg := range path {
		var err error
		t, addressable, err = p.compileSegment(t, addressable, seg)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// compileSegment emits the steps for one path segment, returning the
// result type and its addressability.
func (p *Program) compileSegment(t reflect.Type, addressable bool, seg string) (reflect.Type, bool, error) {
	// Accessor method first (encapsulation, LP2), through the richest
	// method set ResolvePath would reach: the pointer type's when the
	// value will be addressable, the value's own otherwise — and for
	// pointers and interfaces always the value's own (a pointer's
	// method set is already complete; a pointer-to-interface has none).
	if t.Kind() != reflect.Pointer && t.Kind() != reflect.Interface && addressable {
		if m, ok := reflect.PointerTo(t).MethodByName(seg); ok {
			out, err := accessorResult(m, false, seg)
			if err != nil {
				return nil, false, err
			}
			p.steps = append(p.steps, step{op: opAddrMethod, idx: m.Index})
			return out, false, nil
		}
	} else if m, ok := t.MethodByName(seg); ok {
		out, err := p.emitMethod(t, m, seg)
		return out, false, err
	}
	// Dereference pointers, retrying the value method set after each hop
	// exactly as ResolvePath's deref loop does (only multi-level
	// pointers can gain a method here).
	for t.Kind() == reflect.Pointer {
		p.steps = append(p.steps, step{
			op:  opDeref,
			err: fmt.Errorf("accessor: segment %q on nil pointer", seg),
		})
		t = t.Elem()
		addressable = true
		if m, ok := t.MethodByName(seg); ok {
			out, err := p.emitMethod(t, m, seg)
			return out, false, err
		}
	}
	if t.Kind() != reflect.Struct {
		return nil, false, fmt.Errorf("accessor: segment %q on non-struct %s", seg, t.Kind())
	}
	f, ok := t.FieldByName(seg)
	if !ok {
		return nil, false, fmt.Errorf("accessor: no accessor or field %q on %s", seg, t)
	}
	// Promoted fields expand to their index chain; an embedded pointer
	// between hops dereferences (failing on nil like FieldByIndexErr).
	cur := t
	for k, idx := range f.Index {
		p.steps = append(p.steps, step{op: opField, idx: idx})
		cur = cur.Field(idx).Type
		if k < len(f.Index)-1 && cur.Kind() == reflect.Pointer {
			p.steps = append(p.steps, step{
				op:  opDeref,
				err: fmt.Errorf("accessor: segment %q through nil embedded pointer", seg),
			})
			cur = cur.Elem()
			addressable = true
		}
	}
	return cur, addressable, nil
}

// emitMethod validates one value-method-set accessor hit and appends
// its step: for interface receivers the step carries a preallocated
// nil-interface error (reflect.Value.Method panics on a nil interface
// value, where the reflective fallback fails with a plain error;
// Resolve guards with this error instead).
func (p *Program) emitMethod(t reflect.Type, m reflect.Method, seg string) (reflect.Type, error) {
	iface := t.Kind() == reflect.Interface
	out, err := accessorResult(m, iface, seg)
	if err != nil {
		return nil, err
	}
	st := step{op: opMethod, idx: m.Index}
	if iface {
		st.err = fmt.Errorf("accessor: segment %q on nil interface", seg)
	}
	p.steps = append(p.steps, st)
	return out, nil
}

// accessorResult validates the paper's accessor shape — niladic, one
// result (§3.3.4) — and returns the result type. Interface method
// descriptors carry no receiver parameter; concrete ones do.
func accessorResult(m reflect.Method, iface bool, seg string) (reflect.Type, error) {
	mt := m.Type
	wantIn := 1
	if iface {
		wantIn = 0
	}
	if mt.NumIn() != wantIn || mt.NumOut() != 1 {
		return nil, fmt.Errorf("accessor: accessor %q must be niladic with one result", seg)
	}
	return mt.Out(0), nil
}

// FieldSteps reports the program as a chain of struct-field indices
// (with -1 marking a pointer dereference) when the path is purely
// structural — no accessor-method steps. Such a chain is decidable
// against the class's wire encoding alone, which is what lets the wire
// extractor (internal/wire) resolve the path from encoded bytes without
// materializing the event. Paths with method steps report ok == false:
// a method's result is not a wire location.
func (p *Program) FieldSteps() (chain []int, ok bool) {
	chain = make([]int, 0, len(p.steps))
	for i := range p.steps {
		switch p.steps[i].op {
		case opField:
			chain = append(chain, p.steps[i].idx)
		case opDeref:
			chain = append(chain, -1)
		default:
			return nil, false
		}
	}
	return chain, true
}

// Root returns the type the program was compiled for.
func (p *Program) Root() reflect.Type { return p.root }

// Path returns the dotted path the program resolves.
func (p *Program) Path() string { return p.path }

// Resolve replays the program against one event value (which must have
// the program's root type) and returns the reflected result. Field and
// deref steps perform zero heap allocations; method steps pay one
// reflect Call each. The only possible failures are value-dependent:
// nil pointers along the path.
func (p *Program) Resolve(root reflect.Value) (reflect.Value, error) {
	if !root.IsValid() || root.Type() != p.root {
		return reflect.Value{}, fmt.Errorf("accessor: program for %s applied to %v", p.root, rootType(root))
	}
	v := root
	for i := range p.steps {
		st := &p.steps[i]
		switch st.op {
		case opField:
			v = v.Field(st.idx)
		case opDeref:
			if v.IsNil() {
				return reflect.Value{}, st.err
			}
			v = v.Elem()
		case opMethod:
			if st.err != nil && v.IsNil() { // interface method: nil receiver
				return reflect.Value{}, st.err
			}
			var err error
			if v, err = callMethod(v.Method(st.idx)); err != nil {
				return reflect.Value{}, err
			}
		default: // opAddrMethod
			var err error
			if v, err = callMethod(v.Addr().Method(st.idx)); err != nil {
				return reflect.Value{}, err
			}
		}
	}
	return v, nil
}

// callMethod invokes one accessor step. A panicking accessor (typically
// a promoted method reached through a nil embedded pointer) becomes a
// resolution error, mirroring filter.callAccessor: a data-dependent
// panic must never crash a filtering host.
func callMethod(m reflect.Value) (rv reflect.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			rv, err = reflect.Value{}, fmt.Errorf("accessor: accessor panicked: %v", r)
		}
	}()
	return m.Call(nil)[0], nil
}

// rootType renders a value's type for the mismatch error (invalid
// values have none).
func rootType(v reflect.Value) any {
	if !v.IsValid() {
		return "invalid value"
	}
	return v.Type()
}

// Constant resolves the path and normalizes the result to a filter
// constant — the compiled equivalent of filter.ResolvePath followed by
// filter.ValueOf.
func (p *Program) Constant(root reflect.Value) (filter.Constant, error) {
	v, err := p.Resolve(root)
	if err != nil {
		return filter.Constant{}, err
	}
	c, err := filter.ValueOf(v)
	if err != nil {
		return filter.Constant{}, fmt.Errorf("accessor: path %s: %w", p.path, err)
	}
	return c, nil
}
