//go:build !race

package accessor

const raceEnabled = false
