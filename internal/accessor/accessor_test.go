package accessor

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"govents/internal/filter"
)

// The test menagerie exercises every structural feature the compiler
// must simulate: value- and pointer-receiver accessors, embedded
// structs (promotion), embedded pointers (nil-able promotion hops),
// explicit pointer fields, multi-level pointers, named non-struct
// types with methods, and reference-kind fields that must fail
// ValueOf.

type inner struct {
	Score  float64
	Label  string
	hidden int // unexported: reachable by field lookup, like the oracle
}

func (in inner) GetScore() float64 { return in.Score }

func (in *inner) PtrLabel() string { return in.Label }

type price float64

func (p price) Cents() int { return int(p * 100) }

// scorer is an interface-typed field's static type: its methods must
// resolve through the interface method set, whether or not the holding
// position is addressable (a pointer-to-interface type has no methods,
// so the addressable-lookup shortcut must not apply to interfaces).
type scorer interface {
	CurScore() float64
}

func (in inner) CurScore() float64 { return in.Score }

type embedded struct {
	Region string
}

func (e embedded) GetRegion() string { return e.Region }

type event struct {
	embedded          // promoted fields and methods
	*inner            // promoted through a nil-able embedded pointer
	Company  string
	Price    price
	Amount   int
	Active   bool
	Nested   inner
	Ptr      *inner
	PtrPtr   **inner
	Iface    scorer   // interface-typed field (addressable via &event)
	IfacePtr *scorer  // pointer to interface: deref lands on an interface
	Tags     []string // non-primitive leaf: ValueOf must reject
}

func (e event) GetCompany() string { return e.Company }

func (e *event) AddrAmount() int { return e.Amount }

func (e event) TwoResults() (int, int) { return 1, 2 } // malformed accessor

func (e event) Arity(x int) int { return x } // malformed accessor

func mkEvent(rng *rand.Rand) event {
	ev := event{
		embedded: embedded{Region: fmt.Sprintf("region-%d", rng.Intn(5))},
		Company:  fmt.Sprintf("co-%d", rng.Intn(10)),
		Price:    price(rng.Float64() * 100),
		Amount:   rng.Intn(1000),
		Active:   rng.Intn(2) == 0,
		Nested:   inner{Score: rng.Float64(), Label: "n", hidden: rng.Intn(9)},
		Tags:     []string{"a"},
	}
	if rng.Intn(2) == 0 {
		ev.inner = &inner{Score: rng.Float64(), Label: "emb"}
	}
	if rng.Intn(2) == 0 {
		ev.Ptr = &inner{Score: rng.Float64(), Label: "ptr"}
	}
	if rng.Intn(2) == 0 {
		p := &inner{Score: rng.Float64(), Label: "pp"}
		ev.PtrPtr = &p
	}
	if rng.Intn(2) == 0 {
		ev.Iface = inner{Score: rng.Float64()}
	}
	switch rng.Intn(3) {
	case 0: // non-nil pointer to non-nil interface
		var s scorer = inner{Score: rng.Float64()}
		ev.IfacePtr = &s
	case 1: // non-nil pointer to nil interface (the reflect panic shape)
		ev.IfacePtr = new(scorer)
	}
	return ev
}

// paths is the randomized path pool: resolvable ones, value-dependent
// ones (nil pointers), and statically hopeless ones.
var paths = [][]string{
	{"GetCompany"},
	{"Company"},
	{"Region"},              // promoted field
	{"GetRegion"},           // promoted value-receiver method
	{"Price"},               // named non-struct leaf
	{"Price", "Cents"},      // method on a named non-struct type
	{"Amount"},
	{"Active"},
	{"AddrAmount"},          // pointer-receiver accessor
	{"Nested", "Score"},
	{"Nested", "GetScore"},
	{"Nested", "PtrLabel"},  // pointer-receiver on a nested field
	{"Nested", "hidden"},    // unexported field
	{"Ptr", "Score"},        // explicit pointer hop (nil-able)
	{"Ptr", "GetScore"},
	{"Ptr", "PtrLabel"},
	{"PtrPtr", "Score"},     // multi-level pointer
	{"Iface", "CurScore"},   // interface method (addressable iff &event root)
	{"Iface", "Missing"},    // not in the interface's method set
	{"IfacePtr", "CurScore"}, // interface method behind a pointer deref
	{"IfacePtr", "Missing"},
	{"Score"},               // promoted through embedded pointer (nil-able)
	{"Label"},               // ditto
	{"PtrLabel"},            // promoted pointer-receiver method
	{"Tags"},                // resolves, but ValueOf rejects
	{"Missing"},             // no such segment
	{"Nested", "Missing"},
	{"Company", "Length"},   // segment on non-struct leaf
	{"TwoResults"},          // malformed accessor signature
	{"Arity"},               // malformed accessor signature
}

// TestProgramMatchesResolvePath is the randomized equivalence fuzz: for
// every (root shape, path) draw, a compiled program and the reflective
// oracle must agree on success, on the resolved constant, and on
// failure. Root shapes cover both ways an event reaches a matcher:
// boxed struct value (non-addressable) and pointer to struct.
func TestProgramMatchesResolvePath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		ev := mkEvent(rng)
		var root any
		if rng.Intn(2) == 0 {
			root = ev
		} else {
			root = &ev
		}
		path := paths[rng.Intn(len(paths))]
		rv := reflect.ValueOf(root)

		wantV, wantErr := filter.ResolvePath(rv, path)
		var want filter.Constant
		if wantErr == nil {
			want, wantErr = filter.ValueOf(wantV)
		}

		prog, cerr := Compile(rv.Type(), path)
		if cerr != nil {
			// Compile-time rejection must only happen when the oracle
			// fails for every value of the type: value-dependent
			// failures (nil pointers) must compile and fail at Resolve.
			if wantErr == nil {
				t.Fatalf("path %v on %T: compile rejected (%v) but oracle resolved %+v", path, root, cerr, want)
			}
			continue
		}
		got, gotErr := prog.Constant(rv)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("path %v on %T: program err=%v, oracle err=%v", path, root, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("path %v on %T: program=%+v oracle=%+v", path, root, got, want)
		}
	}
}

// TestCompileRejectsStaticallyHopelessPaths pins that paths the oracle
// can never resolve are rejected once at compile time (the caller's
// signal to take the per-event fallback).
func TestCompileRejectsStaticallyHopelessPaths(t *testing.T) {
	typ := reflect.TypeOf(event{})
	for _, path := range [][]string{
		{"Missing"},
		{"Nested", "Missing"},
		{"Company", "Length"},
		{"TwoResults"},
		{"Arity"},
	} {
		if _, err := Compile(typ, path); err == nil {
			t.Errorf("Compile(%v) succeeded, want error", path)
		}
	}
	if _, err := Compile(nil, []string{"X"}); err == nil {
		t.Error("Compile(nil root) succeeded, want error")
	}
	if _, err := Compile(typ, nil); err == nil {
		t.Error("Compile(empty path) succeeded, want error")
	}
}

// TestAddrAccessorRequiresAddressability pins the method-set fidelity
// that makes compilation sound: a pointer-receiver accessor is
// reachable from a *event root (and from addressable positions below a
// deref) but not from a boxed event value — exactly like the oracle.
func TestAddrAccessorRequiresAddressability(t *testing.T) {
	ev := event{Amount: 7}

	if _, err := Compile(reflect.TypeOf(ev), []string{"AddrAmount"}); err == nil {
		t.Error("AddrAmount compiled for non-addressable value root; oracle cannot resolve it there")
	}
	if _, err := filter.ResolvePath(reflect.ValueOf(ev), []string{"AddrAmount"}); err == nil {
		t.Error("oracle resolved AddrAmount on a value root; compiled parity test is stale")
	}

	prog, err := Compile(reflect.TypeOf(&ev), []string{"AddrAmount"})
	if err != nil {
		t.Fatalf("AddrAmount via pointer root: %v", err)
	}
	c, err := prog.Constant(reflect.ValueOf(&ev))
	if err != nil || c.I != 7 {
		t.Fatalf("AddrAmount = %+v, %v; want 7", c, err)
	}

	// Below a deref the value is addressable: pointer-receiver methods
	// of a pointed-to struct compile from a value root too.
	prog, err = Compile(reflect.TypeOf(ev), []string{"Ptr", "PtrLabel"})
	if err != nil {
		t.Fatalf("Ptr.PtrLabel: %v", err)
	}
	ev.Ptr = &inner{Label: "deep"}
	c, err = prog.Constant(reflect.ValueOf(ev))
	if err != nil || c.S != "deep" {
		t.Fatalf("Ptr.PtrLabel = %+v, %v; want deep", c, err)
	}
}

// TestInterfaceMethodOnAddressableField is the regression test for the
// single-lookup rewrite: an interface-typed field reached through a
// pointer root is addressable, but its methods live in the interface's
// own method set (a pointer-to-interface type has none), so the
// addressable pointer-method-set shortcut must not apply to interface
// kinds — in the compiler or in the reflective fallback.
func TestInterfaceMethodOnAddressableField(t *testing.T) {
	ev := event{Iface: inner{Score: 42}}
	for _, root := range []any{ev, &ev} {
		rv := reflect.ValueOf(root)
		v, err := filter.ResolvePath(rv, []string{"Iface", "CurScore"})
		if err != nil {
			t.Fatalf("oracle on %T: %v", root, err)
		}
		if got := v.Float(); got != 42 {
			t.Fatalf("oracle on %T = %v, want 42", root, got)
		}
		prog, err := Compile(rv.Type(), []string{"Iface", "CurScore"})
		if err != nil {
			t.Fatalf("Compile on %T: %v", root, err)
		}
		c, err := prog.Constant(rv)
		if err != nil || c.F != 42 {
			t.Fatalf("program on %T = %+v, %v; want 42", root, c, err)
		}
	}
}

// TestNilPointerFailsAtResolveNotCompile pins the fail-open split: nil
// pointers are value conditions, so the program compiles and the
// per-event failure is an error (with no allocation), never a panic.
func TestNilPointerFailsAtResolveNotCompile(t *testing.T) {
	for _, path := range [][]string{{"Ptr", "Score"}, {"Score"}, {"PtrPtr", "Score"}} {
		prog, err := Compile(reflect.TypeOf(event{}), path)
		if err != nil {
			t.Fatalf("Compile(%v): %v", path, err)
		}
		if _, err := prog.Resolve(reflect.ValueOf(event{})); err == nil {
			t.Errorf("Resolve(%v) over nil pointers succeeded, want error", path)
		}
	}
}

// TestResolveRejectsWrongRootType pins the guard against a program
// compiled for one class being replayed against another.
func TestResolveRejectsWrongRootType(t *testing.T) {
	prog, err := Compile(reflect.TypeOf(event{}), []string{"Company"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Resolve(reflect.ValueOf(inner{})); err == nil {
		t.Error("Resolve with mismatched root type succeeded, want error")
	}
	if _, err := prog.Resolve(reflect.Value{}); err == nil {
		t.Error("Resolve with invalid root succeeded, want error")
	}
}

// TestFieldProgramZeroAllocs pins the tentpole's allocation claim:
// compiled field/deref paths (including promoted and pointer-hopping
// ones) resolve with zero steady-state heap allocations, and the
// nil-pointer failure path allocates nothing either (preallocated step
// errors).
func TestFieldProgramZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	in := &inner{Score: 4.5, Label: "x"}
	ev := event{Company: "co", Amount: 3, Nested: inner{Score: 9}, Ptr: in}
	ev.inner = in
	rv := reflect.ValueOf(ev)
	for _, path := range [][]string{
		{"Company"},
		{"Amount"},
		{"Nested", "Score"},
		{"Ptr", "Score"},
		{"Score"}, // promoted through the embedded pointer
		{"Region"},
	} {
		prog, err := Compile(rv.Type(), path)
		if err != nil {
			t.Fatalf("Compile(%v): %v", path, err)
		}
		allocs := testing.AllocsPerRun(500, func() {
			if _, err := prog.Constant(rv); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("path %v: %.1f allocs/op, want 0", path, allocs)
		}
	}

	// Value-dependent failure path: nil pointer, still zero allocs.
	prog, err := Compile(rv.Type(), []string{"PtrPtr", "Score"})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := prog.Resolve(rv); err == nil {
			t.Fatal("want nil-pointer error")
		}
	})
	if allocs > 0 {
		t.Errorf("nil-pointer fail path: %.1f allocs/op, want 0", allocs)
	}
}

// TestMethodProgramFewerAllocsThanNameLookup pins the method-segment
// win: a compiled Method(i) call must stay strictly cheaper than the
// MethodByName resolution it replaces (it cannot reach zero: a reflect
// Call allocates its result).
func TestMethodProgramFewerAllocsThanNameLookup(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ev := event{Company: "co"}
	rv := reflect.ValueOf(ev)
	prog, err := Compile(rv.Type(), []string{"GetCompany"})
	if err != nil {
		t.Fatal(err)
	}
	compiled := testing.AllocsPerRun(300, func() {
		if _, err := prog.Constant(rv); err != nil {
			t.Fatal(err)
		}
	})
	reflective := testing.AllocsPerRun(300, func() {
		v, err := filter.ResolvePath(rv, []string{"GetCompany"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := filter.ValueOf(v); err != nil {
			t.Fatal(err)
		}
	})
	if compiled >= reflective {
		t.Errorf("compiled method path allocates %.1f/op, reflective %.1f/op; want strictly fewer", compiled, reflective)
	}
}

func TestProgramMetadata(t *testing.T) {
	prog, err := Compile(reflect.TypeOf(event{}), []string{"Nested", "Score"})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Root() != reflect.TypeOf(event{}) {
		t.Errorf("Root() = %v", prog.Root())
	}
	if got := prog.Path(); got != strings.Join([]string{"Nested", "Score"}, ".") {
		t.Errorf("Path() = %q", got)
	}
}

// TestNilInterfaceBehindPointerFailsOpen is the regression test for the
// pointer-to-interface deref: a non-nil pointer to a nil interface must
// resolve to an error (fail-open) in both the reflective fallback and
// the compiled program — reflect.Value.MethodByName/Method panic on
// that shape if probed directly.
func TestNilInterfaceBehindPointerFailsOpen(t *testing.T) {
	ev := event{IfacePtr: new(scorer)}
	rv := reflect.ValueOf(ev)
	path := []string{"IfacePtr", "CurScore"}
	if _, err := filter.ResolvePath(rv, path); err == nil {
		t.Error("oracle resolved a method on a nil interface behind a pointer, want error")
	}
	prog, err := Compile(rv.Type(), path)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := prog.Resolve(rv); err == nil {
		t.Error("program resolved a method on a nil interface behind a pointer, want error")
	}

	// Non-nil all the way down still works.
	var s scorer = inner{Score: 7}
	ev.IfacePtr = &s
	c, err := prog.Constant(reflect.ValueOf(ev))
	if err != nil || c.F != 7 {
		t.Fatalf("IfacePtr.CurScore = %+v, %v; want 7", c, err)
	}
}
