// Package transport implements a real TCP transport satisfying the
// netsim.Transport interface, used by the standalone broker binary and
// by integration tests that exercise the stack over actual sockets.
//
// Wire format per message: a 4-byte big-endian frame length, a 2-byte
// big-endian sender-address length, the sender address, and the payload.
// Connections are dialed lazily per destination and kept open; the
// transport is best-effort like the simulated network — reliability is
// layered above by the multicast protocols.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"govents/internal/netsim"
)

// pkgLogger receives transport diagnostics that have no error-return
// path to the application — torn frames on inbound connections, which
// readLoop previously swallowed. Package-level because accepted
// connections have no per-instance configuration hook. Default: discard.
var pkgLogger atomic.Pointer[slog.Logger]

// SetLogger installs the package's diagnostics logger (nil restores the
// discarding default). Safe for concurrent use.
func SetLogger(l *slog.Logger) {
	if l == nil {
		pkgLogger.Store(nil)
		return
	}
	pkgLogger.Store(l)
}

// logger returns the installed logger or a discarding one.
func logger() *slog.Logger {
	if l := pkgLogger.Load(); l != nil {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// maxFrame bounds a single message frame (16 MiB) to stop a corrupted
// length prefix from allocating unbounded memory.
const maxFrame = 16 << 20

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// TCP is a netsim.Transport over real TCP sockets.
type TCP struct {
	ln net.Listener

	mu      sync.Mutex
	conns   map[string]net.Conn // destination address -> outbound conn
	inbound map[net.Conn]bool   // accepted connections, closed on Close
	handler netsim.Handler
	closed  bool

	wg sync.WaitGroup
}

var _ netsim.Transport = (*TCP)(nil)

// Listen starts a TCP transport bound to addr (e.g. "127.0.0.1:0").
// The effective address, including the kernel-chosen port, is available
// from Addr.
func Listen(addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		ln:      ln,
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements netsim.Transport.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetHandler implements netsim.Transport.
func (t *TCP) SetHandler(h netsim.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send implements netsim.Transport. The first send to a destination dials
// a connection that is cached for subsequent sends; a send on a broken
// cached connection evicts it and retries once with a fresh dial.
func (t *TCP) Send(to string, payload []byte) error {
	frame, err := encodeFrame(t.Addr(), payload)
	if err != nil {
		return err
	}
	if err := t.writeFrame(to, frame); err == nil {
		return nil
	}
	// Retry once on a fresh connection (the cached one may have died).
	t.evict(to)
	return t.writeFrame(to, frame)
}

func (t *TCP) writeFrame(to string, frame []byte) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

func (t *TCP) conn(to string) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	c, err := net.Dial("tcp", to)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the race with a concurrent dial; keep the first.
		_ = c.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) evict(to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		_ = c.Close()
		delete(t.conns, to)
	}
}

// Close implements netsim.Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.conns = make(map[string]net.Conn)
	for c := range t.inbound {
		_ = c.Close()
	}
	t.inbound = make(map[net.Conn]bool)
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		from, payload, err := readFrame(conn)
		if err != nil {
			// Clean close (EOF between frames, or our own Close tearing
			// the socket down) is the normal end of a connection; anything
			// else — a torn frame, a corrupt length prefix — is a peer or
			// network anomaly worth surfacing.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				logger().Warn("transport: closing inbound connection on bad frame",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, payload)
		}
	}
}

// encodeFrame builds [len u32][addrLen u16][addr][payload].
func encodeFrame(from string, payload []byte) ([]byte, error) {
	if len(from) > 0xFFFF {
		return nil, fmt.Errorf("transport: sender address too long (%d bytes)", len(from))
	}
	body := 2 + len(from) + len(payload)
	if body > maxFrame {
		return nil, fmt.Errorf("transport: frame too large (%d bytes)", body)
	}
	buf := make([]byte, 4+body)
	binary.BigEndian.PutUint32(buf[0:4], uint32(body))
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(from)))
	copy(buf[6:], from)
	copy(buf[6+len(from):], payload)
	return buf, nil
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	body := binary.BigEndian.Uint32(lenBuf[:])
	if body < 2 || body > maxFrame {
		return "", nil, fmt.Errorf("transport: invalid frame length %d", body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	addrLen := int(binary.BigEndian.Uint16(buf[0:2]))
	if 2+addrLen > len(buf) {
		return "", nil, fmt.Errorf("transport: invalid address length %d", addrLen)
	}
	return string(buf[2 : 2+addrLen]), buf[2+addrLen:], nil
}
