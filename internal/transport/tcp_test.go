package transport

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met before deadline")
}

func TestSendReceive(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	var gotFrom string
	var gotPayload []byte
	b.SetHandler(func(from string, p []byte) {
		mu.Lock()
		defer mu.Unlock()
		gotFrom, gotPayload = from, p
	})
	if err := a.Send(b.Addr(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotPayload != nil
	})
	mu.Lock()
	defer mu.Unlock()
	if gotFrom != a.Addr() {
		t.Errorf("from = %q, want %q", gotFrom, a.Addr())
	}
	if string(gotPayload) != "over tcp" {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestBidirectional(t *testing.T) {
	a, b := newPair(t)
	var fromB, fromA atomic.Int32
	a.SetHandler(func(string, []byte) { fromB.Add(1) })
	b.SetHandler(func(string, []byte) { fromA.Add(1) })
	if err := a.Send(b.Addr(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.Addr(), []byte("2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return fromA.Load() == 1 && fromB.Load() == 1 })
}

func TestManyMessagesInOrderPerConnection(t *testing.T) {
	a, b := newPair(t)
	const n = 500
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(_ string, p []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, string(p))
	})
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if want := fmt.Sprintf("m%04d", i); m != want {
			t.Fatalf("message %d = %q, want %q (TCP stream must preserve order)", i, m, want)
		}
	}
}

func TestLargePayload(t *testing.T) {
	a, b := newPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 1<<20) // 1 MiB
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, p []byte) { got <- p })
	if err := a.Send(b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Error("large payload corrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	a, b := newPair(t)
	if err := a.Send(b.Addr(), make([]byte, maxFrame)); err == nil {
		t.Fatal("expected frame-too-large error")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b := newPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("x")); err == nil {
		t.Fatal("send after close should fail")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSendToDeadPeerFails(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := b.Addr()
	_ = b.Close()
	if err := a.Send(dead, []byte("x")); err == nil {
		t.Fatal("send to closed peer should eventually fail")
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	a, b := newPair(t)
	var count atomic.Int32
	b.SetHandler(func(string, []byte) { count.Add(1) })
	if err := a.Send(b.Addr(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return count.Load() == 1 })

	// Restart b on the same port.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := Listen(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer b2.Close()
	var count2 atomic.Int32
	b2.SetHandler(func(string, []byte) { count2.Add(1) })

	// The cached connection is dead. The first write may succeed
	// locally (TCP buffers it; the RST arrives later), so the transport
	// is only guaranteed to recover on a subsequent send — it is
	// best-effort by contract, and reliability is layered above.
	// Send until the restarted peer receives something.
	waitFor(t, 5*time.Second, func() bool {
		_ = a.Send(addr, []byte("2"))
		return count2.Load() >= 1
	})
}

func TestConcurrentSenders(t *testing.T) {
	a, b := newPair(t)
	c, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const per = 200
	var count atomic.Int32
	b.SetHandler(func(string, []byte) { count.Add(1) })
	var wg sync.WaitGroup
	for _, src := range []*TCP{a, c} {
		wg.Add(1)
		go func(s *TCP) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Send(b.Addr(), []byte("m")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return count.Load() == 2*per })
}

func TestFrameCodecRoundTrip(t *testing.T) {
	frame, err := encodeFrame("1.2.3.4:5", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	from, payload, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if from != "1.2.3.4:5" || string(payload) != "payload" {
		t.Errorf("round trip = %q %q", from, payload)
	}
}

func TestReadFrameRejectsCorruptLength(t *testing.T) {
	// A frame claiming more than maxFrame.
	if _, _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})); err == nil {
		t.Fatal("expected error for oversized frame")
	}
	// A frame whose address length exceeds the body.
	frame, _ := encodeFrame("ab", nil)
	frame[5] = 200 // corrupt addrLen
	if _, _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("expected error for corrupt address length")
	}
}
