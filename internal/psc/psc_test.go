package psc

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writePkg materializes a package in a temp dir.
func writePkg(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const stockSrc = `package stock

import (
	"strings"

	"govents/internal/obvent"
)

// StockObvent is the root obvent class.
type StockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

func (s StockObvent) GetCompany() string { return s.Company }
func (s StockObvent) GetPrice() float64  { return s.Price }

// StockQuote inherits obvent-ness by embedding.
type StockQuote struct {
	StockObvent
}

// Trade composes QoS semantics.
type Trade struct {
	obvent.Base
	obvent.CertifiedBase
	obvent.TotalOrderBase
	N int
}

// notExported obvents get no adapter.
type hidden struct {
	obvent.Base
}

// Plain structs are not obvents.
type Plain struct {
	X int
}

//psc:filter
func CheapTelco(q StockQuote) bool {
	return q.GetPrice() < 100 && strings.Contains(q.GetCompany(), "Telco")
}

//psc:filter
func Complex(q StockQuote) bool {
	return !(q.GetPrice() >= 500) || (q.Amount != 0 && 80 < q.GetPrice())
}

//psc:filter
func SpreadCheck(q StockQuote) bool {
	return q.GetPrice() > q.Price
}
`

const badFiltersSrc = `package stock

//psc:filter
func UsesFreeVariable(q StockQuote) bool {
	return q.GetPrice() < threshold
}

//psc:filter
func HasStatements(q StockQuote) bool {
	x := q.GetPrice()
	return x < 100
}

//psc:filter
func CallsForeignCode(q StockQuote) bool {
	return lookup(q.GetCompany()) == 1
}

//psc:filter
func ArgInAccessor(q StockQuote) bool {
	return q.PriceAt(3) < 100
}
`

func TestScanClasses(t *testing.T) {
	dir := writePkg(t, map[string]string{"stock.go": stockSrc})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Package != "stock" {
		t.Errorf("package = %q", res.Package)
	}
	var names []string
	for _, c := range res.Classes {
		names = append(names, c.Name)
	}
	want := []string{"StockObvent", "StockQuote", "Trade"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("classes = %v, want %v", names, want)
	}
	// QoS discovery.
	for _, c := range res.Classes {
		if c.Name == "Trade" {
			if strings.Join(c.QoS, ",") != "CertifiedBase,TotalOrderBase" {
				t.Errorf("Trade QoS = %v", c.QoS)
			}
		}
	}
}

func TestCodecDiscovery(t *testing.T) {
	const src = `package stock

import "govents/internal/obvent"

type Flat struct {
	obvent.Base
	obvent.PriorityBase
	Name  string
	Score float64
	hidden int
}

type Nested struct {
	Flat
	Count uint16
}

type Timed struct {
	obvent.Base
	obvent.TimelyBase
	N int
}

type Sliced struct {
	obvent.Base
	Tags []string
}
`
	dir := writePkg(t, map[string]string{"stock.go": src})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	codecs := map[string][]CodecField{}
	for _, c := range res.Classes {
		codecs[c.Name] = c.Codec
	}
	flatWant := []CodecField{
		{Path: "PriorityBase.Prio", Type: "int"},
		{Path: "Name", Type: "string"},
		{Path: "Score", Type: "float64"},
	}
	if got := codecs["Flat"]; !reflect.DeepEqual(got, flatWant) {
		t.Errorf("Flat codec = %v, want %v", got, flatWant)
	}
	nestedWant := []CodecField{
		{Path: "Flat.PriorityBase.Prio", Type: "int"},
		{Path: "Flat.Name", Type: "string"},
		{Path: "Flat.Score", Type: "float64"},
		{Path: "Count", Type: "uint16"},
	}
	if got := codecs["Nested"]; !reflect.DeepEqual(got, nestedWant) {
		t.Errorf("Nested codec = %v, want %v", got, nestedWant)
	}
	if codecs["Timed"] != nil {
		t.Errorf("Timed must get no codec (TimelyBase carries time.Time): %v", codecs["Timed"])
	}
	if codecs["Sliced"] != nil {
		t.Errorf("Sliced must get no codec (slice field): %v", codecs["Sliced"])
	}

	out, err := Generate(res)
	if err != nil {
		t.Fatal(err)
	}
	gen := string(out)
	for _, frag := range []string{
		"govents.RegisterWireCodec(govents.WireCodec[Flat]{Encode: encodeFlatWire, Decode: decodeFlatWire})",
		"dst = govents.AppendWireInt(dst, int64(o.PriorityBase.Prio))",
		"o.Flat.Score = d.Float64()",
		"o.Count = uint16(d.UintBits(16))",
	} {
		if !strings.Contains(gen, frag) {
			t.Errorf("generated code missing %q", frag)
		}
	}
	for _, absent := range []string{"encodeTimedWire", "encodeSlicedWire"} {
		if strings.Contains(gen, absent) {
			t.Errorf("generated code must not contain %q", absent)
		}
	}
}

func TestLiftPaperFilter(t *testing.T) {
	dir := writePkg(t, map[string]string{"stock.go": stockSrc})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FilterFunc{}
	for _, f := range res.Filters {
		byName[f.Name] = f
	}

	cheap, ok := byName["CheapTelco"]
	if !ok {
		t.Fatalf("CheapTelco not lifted; violations: %v", res.Violations)
	}
	want := `filter.And(filter.Path("GetPrice").Lt(filter.Int(100)), filter.Path("GetCompany").Contains(filter.Str("Telco")))`
	if cheap.ExprSrc != want {
		t.Errorf("CheapTelco lifted to\n%s\nwant\n%s", cheap.ExprSrc, want)
	}

	cx, ok := byName["Complex"]
	if !ok {
		t.Fatalf("Complex not lifted")
	}
	for _, frag := range []string{"filter.Not(", "filter.Or(", `filter.Path("Amount").Ne(filter.Int(0))`, `filter.Path("GetPrice").Gt(filter.Int(80))`} {
		if !strings.Contains(cx.ExprSrc, frag) {
			t.Errorf("Complex missing %q:\n%s", frag, cx.ExprSrc)
		}
	}

	spread, ok := byName["SpreadCheck"]
	if !ok {
		t.Fatalf("SpreadCheck not lifted")
	}
	if spread.ExprSrc != `filter.Path("GetPrice").Gt(filter.Path("Price"))` {
		t.Errorf("SpreadCheck = %s", spread.ExprSrc)
	}
}

func TestMobilityViolations(t *testing.T) {
	dir := writePkg(t, map[string]string{"stock.go": stockSrc, "bad.go": badFiltersSrc})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, v := range res.Violations {
		got[v.Func] = v.Reason
	}
	wantFuncs := map[string]string{
		"UsesFreeVariable": "free variable",
		"HasStatements":    "single return statement",
		"CallsForeignCode": "comparison must involve the obvent parameter",
		"ArgInAccessor":    "comparison must involve the obvent parameter",
	}
	for fn, frag := range wantFuncs {
		reason, ok := got[fn]
		if !ok {
			t.Errorf("%s: expected a violation", fn)
			continue
		}
		if !strings.Contains(reason, frag) {
			t.Errorf("%s: reason %q missing %q", fn, reason, frag)
		}
	}
	// Violating filters are not lifted.
	for _, f := range res.Filters {
		if _, bad := wantFuncs[f.Name]; bad {
			t.Errorf("%s lifted despite violation", f.Name)
		}
	}
}

func TestViolationPositions(t *testing.T) {
	dir := writePkg(t, map[string]string{"stock.go": stockSrc, "bad.go": badFiltersSrc})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Pos.Filename == "" || v.Pos.Line == 0 {
			t.Errorf("%s: violation lacks a source position: %v", v.Func, v)
		}
		if !strings.Contains(v.Error(), v.Func) {
			t.Errorf("Error() should name the function: %s", v.Error())
		}
	}
}

func TestGenerate(t *testing.T) {
	dir := writePkg(t, map[string]string{"stock.go": stockSrc})
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(res)
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, frag := range []string{
		"Code generated by psc",
		"package stock",
		"type StockQuoteAdapter struct",
		"func NewStockQuoteAdapter(d *govents.Domain) StockQuoteAdapter",
		"func (a StockQuoteAdapter) Publish(ctx context.Context, o StockQuote) error",
		"func (a StockQuoteAdapter) Subscribe(f *filter.Expr, handler func(StockQuote)) (*govents.Subscription, error)",
		"func (a StockQuoteAdapter) SubscribeInactive(f *filter.Expr, handler func(StockQuote)) (*govents.Subscription, error)",
		"func (a TradeAdapter) SubscribeLocal(pred func(Trade) bool, handler func(Trade))",
		"CertifiedBase, TotalOrderBase",
		"func CheapTelcoExpr() *filter.Expr",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("generated code missing %q", frag)
		}
	}
	if strings.Contains(src, "hiddenAdapter") {
		t.Error("unexported obvents must not get adapters")
	}
	if strings.Contains(src, "PlainAdapter") {
		t.Error("non-obvent structs must not get adapters")
	}
}

func TestScanErrors(t *testing.T) {
	if _, err := Scan(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir must fail")
	}
	dir := writePkg(t, map[string]string{"broken.go": "package x\nfunc {"})
	if _, err := Scan(dir); err == nil {
		t.Error("unparsable source must fail")
	}
}
