// Package psc implements the publish/subscribe precompiler of the
// paper's §4 — "the publish/subscribe counterpart to the rmic compiler"
// — for Go sources. The cmd/psc binary wraps it.
//
// Given a package directory, psc:
//
//  1. Discovers obvent classes: exported struct types that (possibly
//     transitively) embed obvent.Base.
//
//  2. Generates one typed adapter per class (the paper's Figure 6
//     TAdapter): a thin, statically typed facade over the engine with
//     Publish and Subscribe entry points for exactly that class.
//
//  3. Lifts filter functions into first-class expression trees (the
//     paper's §4.4.3 invocation + evaluation trees): a function
//     annotated with a "//psc:filter" comment and shaped
//     func(t T) bool is checked against the mobility restrictions of
//     §3.3.4 — only (nested) accessor invocations on the filtered
//     obvent, primitive constants, comparisons and boolean
//     connectives — and, when conforming, compiled into a generated
//     FooExpr() *filter.Expr constructor. Non-conforming filters are
//     reported with the offending position; like the paper, the
//     application can still use them as opaque local filters, losing
//     migrateability.
//
// The paper achieves this with Java source preprocessing because Java
// offers no metaprogramming; Go's go/ast + go/format (stdlib) provide
// the same capability without leaving the toolchain.
package psc

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Class is a discovered obvent class.
type Class struct {
	// Name is the exported type name.
	Name string
	// QoS lists the embedded QoS bases (documentation of the
	// composed semantics).
	QoS []string
	// Codec is the flattened exported-field layout used to generate
	// the class's typed wire codec — one entry per primitive field, in
	// declared order, embedded structs contributing their fields at
	// their position. Nil when the class is not codec-generatable (a
	// field type the generator cannot prove primitive, or an embedded
	// obvent.TimelyBase, whose time.Time fields the wire compiler
	// rejects anyway).
	Codec []CodecField
}

// CodecField is one flattened field of a codec-generatable class: the
// full selector path from the class value and its source type name.
type CodecField struct {
	Path string
	Type string
}

// FilterFunc is a discovered //psc:filter function.
type FilterFunc struct {
	// Name is the function name; the generated constructor is
	// Name + "Expr".
	Name string
	// Param and ParamType describe the filtered obvent parameter.
	Param     string
	ParamType string
	// ExprSrc is the generated filter.Expr construction expression.
	ExprSrc string
}

// Violation reports a filter that breaks the mobility restrictions.
type Violation struct {
	Func   string
	Pos    token.Position
	Reason string
}

// Error renders the violation like a compiler diagnostic.
func (v Violation) Error() string {
	return fmt.Sprintf("%s: filter %s: %s", v.Pos, v.Func, v.Reason)
}

// Result is the outcome of scanning one package directory.
type Result struct {
	Package    string
	Classes    []Class
	Filters    []FilterFunc
	Violations []Violation
}

// structInfo is one struct declaration's scan record.
type structInfo struct {
	embedsObventBase bool // directly embeds obvent.Base
	embeds           []string
	qos              []string
	items            []structItem // full field layout, declared order
	foreign          bool         // embeds a type the scanner cannot resolve
}

// structItem is one field (named or embedded) of a scanned struct.
type structItem struct {
	embed string // embedded type name ("obvent.X" for QoS bases); "" for named fields
	name  string // named field name
	typ   string // named field's rendered source type
}

// wirePrims maps the source type names the codec generator accepts to
// their wire encoding family. Everything else (slices, maps, pointers,
// external types the scanner cannot see into) leaves codec generation
// to the runtime's compiled reflect program.
var wirePrims = map[string]string{
	"bool":    "bool",
	"string":  "string",
	"float32": "float32", "float64": "float64",
	"int": "int", "int8": "int", "int16": "int", "int32": "int",
	"int64": "int", "rune": "int", "time.Duration": "int",
	"uint": "uint", "uint8": "uint", "uint16": "uint", "uint32": "uint",
	"uint64": "uint", "byte": "uint",
}

// liftCodec flattens a class's wire-traveling fields in encoding order,
// or returns nil when the class is not codec-generatable.
func liftCodec(name string, structs map[string]*structInfo) []CodecField {
	fields, ok := flattenFields(name, "", structs, map[string]bool{})
	if !ok {
		return nil
	}
	return fields
}

// flattenFields walks a struct's declared field order, descending into
// same-package embedded structs — exactly the traversal the wire
// compiler performs, so the flattened sequence is the wire layout.
func flattenFields(name, prefix string, structs map[string]*structInfo, seen map[string]bool) ([]CodecField, bool) {
	if seen[name] {
		return nil, false // recursive embedding: wire-rejected
	}
	seen[name] = true
	defer delete(seen, name)
	info, ok := structs[name]
	if !ok || info.foreign {
		return nil, false
	}
	fields := []CodecField{}
	for _, it := range info.items {
		if it.embed != "" {
			switch it.embed {
			case "obvent.Base", "obvent.ReliableBase", "obvent.CertifiedBase",
				"obvent.TotalOrderBase", "obvent.FIFOOrderBase", "obvent.CausalOrderBase":
				// Empty marker structs contribute no wire bytes.
			case "obvent.PriorityBase":
				fields = append(fields, CodecField{Path: prefix + "PriorityBase.Prio", Type: "int"})
			case "obvent.TimelyBase":
				return nil, false // time.Time fields: the wire compiler rejects the class
			default:
				if !ast.IsExported(it.embed) {
					continue // unexported embedded field: not on the wire
				}
				sub, ok := flattenFields(it.embed, prefix+it.embed+".", structs, seen)
				if !ok {
					return nil, false
				}
				fields = append(fields, sub...)
			}
			continue
		}
		if !ast.IsExported(it.name) {
			continue // unexported fields do not travel
		}
		if _, ok := wirePrims[it.typ]; !ok {
			return nil, false
		}
		fields = append(fields, CodecField{Path: prefix + it.name, Type: it.typ})
	}
	return fields, true
}

// qosBases are the embeddable markers from package obvent.
var qosBases = map[string]bool{
	"Base":            true,
	"ReliableBase":    true,
	"CertifiedBase":   true,
	"TotalOrderBase":  true,
	"FIFOOrderBase":   true,
	"CausalOrderBase": true,
	"TimelyBase":      true,
	"PriorityBase":    true,
}

// Scan parses the package in dir and discovers obvent classes and
// filter functions.
func Scan(dir string) (*Result, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("psc: parse %s: %w", dir, err)
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		pkg = p
	}
	if pkg == nil {
		return nil, fmt.Errorf("psc: no package in %s", dir)
	}

	res := &Result{Package: pkg.Name}

	// Pass 1: struct declarations with their embedded type names and
	// their full field layout (in declared order, for codec generation).
	structs := make(map[string]*structInfo)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &structInfo{}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						switch t := field.Type.(type) {
						case *ast.SelectorExpr:
							if id, ok := t.X.(*ast.Ident); ok && id.Name == "obvent" && qosBases[t.Sel.Name] {
								if t.Sel.Name == "Base" {
									info.embedsObventBase = true
								} else {
									info.qos = append(info.qos, t.Sel.Name)
								}
								info.items = append(info.items, structItem{embed: "obvent." + t.Sel.Name})
								continue
							}
							info.foreign = true // embedded external type
						case *ast.Ident:
							info.embeds = append(info.embeds, t.Name)
							info.items = append(info.items, structItem{embed: t.Name})
						default:
							info.foreign = true // embedded pointer/instantiation
						}
						continue
					}
					typ := exprString(field.Type)
					for _, name := range field.Names {
						info.items = append(info.items, structItem{name: name.Name, typ: typ})
					}
				}
				structs[ts.Name.Name] = info
			}
		}
	}

	// Pass 2: fixpoint obvent-ness through same-package embedding.
	isObvent := func(name string) bool {
		seen := make(map[string]bool)
		var walk func(n string) bool
		walk = func(n string) bool {
			if seen[n] {
				return false
			}
			seen[n] = true
			info, ok := structs[n]
			if !ok {
				return false
			}
			if info.embedsObventBase {
				return true
			}
			for _, e := range info.embeds {
				if walk(e) {
					return true
				}
			}
			return false
		}
		return walk(name)
	}
	for name, info := range structs {
		if !ast.IsExported(name) || !isObvent(name) {
			continue
		}
		qos := append([]string(nil), info.qos...)
		sort.Strings(qos)
		res.Classes = append(res.Classes, Class{Name: name, QoS: qos, Codec: liftCodec(name, structs)})
	}
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Name < res.Classes[j].Name })

	// Pass 3: filter functions.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), "//psc:filter") {
					annotated = true
				}
			}
			if !annotated {
				continue
			}
			ff, violation := liftFilter(fset, fd)
			if violation != nil {
				res.Violations = append(res.Violations, *violation)
				continue
			}
			res.Filters = append(res.Filters, *ff)
		}
	}
	sort.Slice(res.Filters, func(i, j int) bool { return res.Filters[i].Name < res.Filters[j].Name })
	sort.Slice(res.Violations, func(i, j int) bool { return res.Violations[i].Func < res.Violations[j].Func })
	return res, nil
}

// liftFilter checks a filter function against the §3.3.4 mobility
// restrictions and compiles its body into a filter.Expr construction
// expression.
func liftFilter(fset *token.FileSet, fd *ast.FuncDecl) (*FilterFunc, *Violation) {
	bad := func(pos token.Pos, reason string) *Violation {
		return &Violation{Func: fd.Name.Name, Pos: fset.Position(pos), Reason: reason}
	}
	ft := fd.Type
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		return nil, bad(fd.Pos(), "filter must take exactly one named obvent parameter")
	}
	if ft.Results == nil || len(ft.Results.List) != 1 {
		return nil, bad(fd.Pos(), "filter must return exactly bool")
	}
	if id, ok := ft.Results.List[0].Type.(*ast.Ident); !ok || id.Name != "bool" {
		return nil, bad(fd.Pos(), "filter must return bool")
	}
	param := ft.Params.List[0].Names[0].Name
	paramType := exprString(ft.Params.List[0].Type)

	if fd.Body == nil || len(fd.Body.List) != 1 {
		return nil, bad(fd.Pos(), "filter body must be a single return statement (no local variables or statements)")
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, bad(fd.Body.Pos(), "filter body must be a single return statement")
	}

	lifter := &filterLifter{param: param, fset: fset, fn: fd.Name.Name}
	src, v := lifter.lift(ret.Results[0])
	if v != nil {
		return nil, v
	}
	return &FilterFunc{Name: fd.Name.Name, Param: param, ParamType: paramType, ExprSrc: src}, nil
}

// filterLifter translates an allowed boolean expression into filter
// builder source.
type filterLifter struct {
	param string
	fset  *token.FileSet
	fn    string
}

func (l *filterLifter) bad(pos token.Pos, reason string) *Violation {
	return &Violation{Func: l.fn, Pos: l.fset.Position(pos), Reason: reason}
}

// lift translates a boolean expression (evaluation tree).
func (l *filterLifter) lift(e ast.Expr) (string, *Violation) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return l.lift(x.X)
	case *ast.Ident:
		switch x.Name {
		case "true":
			return "filter.True()", nil
		case "false":
			return "filter.False()", nil
		}
		return "", l.bad(x.Pos(), fmt.Sprintf("free variable %q: only the obvent parameter and constants are allowed (§3.3.4)", x.Name))
	case *ast.UnaryExpr:
		if x.Op != token.NOT {
			return "", l.bad(x.Pos(), "only ! is allowed as a boolean unary operator")
		}
		inner, v := l.lift(x.X)
		if v != nil {
			return "", v
		}
		return "filter.Not(" + inner + ")", nil
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			lhs, v := l.lift(x.X)
			if v != nil {
				return "", v
			}
			rhs, v := l.lift(x.Y)
			if v != nil {
				return "", v
			}
			fn := "filter.And"
			if x.Op == token.LOR {
				fn = "filter.Or"
			}
			return fn + "(" + lhs + ", " + rhs + ")", nil
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return l.liftComparison(x)
		default:
			return "", l.bad(x.Pos(), fmt.Sprintf("operator %s is not allowed in a migratable filter", x.Op))
		}
	case *ast.CallExpr:
		return l.liftStringsCall(x)
	default:
		return "", l.bad(e.Pos(), fmt.Sprintf("construct %T is not allowed in a migratable filter", e))
	}
}

var cmpMethods = map[token.Token]string{
	token.EQL: "Eq", token.NEQ: "Ne",
	token.LSS: "Lt", token.LEQ: "Le",
	token.GTR: "Gt", token.GEQ: "Ge",
}

// liftComparison translates `chain op operand`.
func (l *filterLifter) liftComparison(x *ast.BinaryExpr) (string, *Violation) {
	lpath, lok := l.paramChain(x.X)
	rpath, rok := l.paramChain(x.Y)
	method := cmpMethods[x.Op]
	switch {
	case lok && rok:
		return fmt.Sprintf("filter.Path(%q).%s(filter.Path(%q))", lpath, method, rpath), nil
	case lok:
		rhs, v := l.liftOperand(x.Y)
		if v != nil {
			return "", v
		}
		return fmt.Sprintf("filter.Path(%q).%s(%s)", lpath, method, rhs), nil
	case rok:
		// Mirror `const op chain` to `chain op' const`.
		mirror := map[token.Token]string{
			token.EQL: "Eq", token.NEQ: "Ne",
			token.LSS: "Gt", token.LEQ: "Ge",
			token.GTR: "Lt", token.GEQ: "Le",
		}
		lhs, v := l.liftOperand(x.X)
		if v != nil {
			return "", v
		}
		return fmt.Sprintf("filter.Path(%q).%s(%s)", rpath, mirror[x.Op], lhs), nil
	default:
		return "", l.bad(x.Pos(), "comparison must involve the obvent parameter")
	}
}

// liftStringsCall translates strings.Contains/HasPrefix/HasSuffix.
func (l *filterLifter) liftStringsCall(x *ast.CallExpr) (string, *Violation) {
	sel, ok := x.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", l.bad(x.Pos(), "only strings.Contains/HasPrefix/HasSuffix calls are allowed at boolean position")
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "strings" {
		return "", l.bad(x.Pos(), "only invocations on the obvent parameter or the strings package are allowed (§3.3.4)")
	}
	var method string
	switch sel.Sel.Name {
	case "Contains":
		method = "Contains"
	case "HasPrefix":
		method = "HasPrefix"
	case "HasSuffix":
		method = "HasSuffix"
	default:
		return "", l.bad(x.Pos(), fmt.Sprintf("strings.%s is not migratable", sel.Sel.Name))
	}
	if len(x.Args) != 2 {
		return "", l.bad(x.Pos(), "strings predicate must have two arguments")
	}
	path, ok := l.paramChain(x.Args[0])
	if !ok {
		return "", l.bad(x.Args[0].Pos(), "first argument must be an accessor chain on the obvent parameter")
	}
	arg, v := l.liftOperand(x.Args[1])
	if v != nil {
		return "", v
	}
	return fmt.Sprintf("filter.Path(%q).%s(%s)", path, method, arg), nil
}

// liftOperand translates a constant operand.
func (l *filterLifter) liftOperand(e ast.Expr) (string, *Violation) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return l.liftOperand(x.X)
	case *ast.BasicLit:
		switch x.Kind {
		case token.INT:
			return "filter.Int(" + x.Value + ")", nil
		case token.FLOAT:
			return "filter.Float(" + x.Value + ")", nil
		case token.STRING:
			return "filter.Str(" + x.Value + ")", nil
		}
		return "", l.bad(x.Pos(), "only integer, float and string constants are allowed")
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			if lit, ok := x.X.(*ast.BasicLit); ok {
				switch lit.Kind {
				case token.INT:
					return "filter.Int(-" + lit.Value + ")", nil
				case token.FLOAT:
					return "filter.Float(-" + lit.Value + ")", nil
				}
			}
		}
		return "", l.bad(x.Pos(), "operand must be a primitive constant")
	case *ast.Ident:
		switch x.Name {
		case "true", "false":
			return "filter.Bool(" + x.Name + ")", nil
		}
		return "", l.bad(x.Pos(), fmt.Sprintf("free variable %q: filters may only use the obvent parameter and primitive constants (§3.3.4)", x.Name))
	default:
		if path, ok := l.paramChain(e); ok {
			return fmt.Sprintf("filter.Path(%q)", path), nil
		}
		return "", l.bad(e.Pos(), fmt.Sprintf("operand %T is not allowed in a migratable filter", e))
	}
}

// paramChain recognizes accessor chains rooted at the parameter:
// q.GetPrice(), q.Market.Price, q.GetMarket().GetPrice(). It returns
// the dotted path.
func (l *filterLifter) paramChain(e ast.Expr) (string, bool) {
	var segs []string
	cur := e
	for {
		switch x := cur.(type) {
		case *ast.ParenExpr:
			cur = x.X
		case *ast.CallExpr:
			if len(x.Args) != 0 {
				return "", false // only niladic accessors migrate
			}
			cur = x.Fun
		case *ast.SelectorExpr:
			segs = append(segs, x.Sel.Name)
			cur = x.X
		case *ast.Ident:
			if x.Name != l.param {
				return "", false
			}
			if len(segs) == 0 {
				return "", false
			}
			// segs were collected innermost-last; reverse.
			for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
				segs[i], segs[j] = segs[j], segs[i]
			}
			return strings.Join(segs, "."), true
		default:
			return "", false
		}
	}
}

// wireEncStmt renders the encode statement for one flattened field.
func wireEncStmt(f CodecField) string {
	sel := "o." + f.Path
	switch wirePrims[f.Type] {
	case "bool":
		return fmt.Sprintf("dst = govents.AppendWireBool(dst, %s)", sel)
	case "string":
		return fmt.Sprintf("dst = govents.AppendWireString(dst, %s)", sel)
	case "float32":
		return fmt.Sprintf("dst = govents.AppendWireFloat32(dst, %s)", sel)
	case "float64":
		return fmt.Sprintf("dst = govents.AppendWireFloat64(dst, %s)", sel)
	case "int":
		return fmt.Sprintf("dst = govents.AppendWireInt(dst, int64(%s))", sel)
	default: // "uint"
		return fmt.Sprintf("dst = govents.AppendWireUint(dst, uint64(%s))", sel)
	}
}

// wireDecExpr renders the decode expression for one flattened field,
// with the exact-width check the compiled decoder performs on narrow
// integer fields.
func wireDecExpr(f CodecField) string {
	switch f.Type {
	case "bool":
		return "d.Bool()"
	case "string":
		return "d.String()"
	case "float32":
		return "d.Float32()"
	case "float64":
		return "d.Float64()"
	case "int64":
		return "d.Int()"
	case "int":
		return "int(d.Int())"
	case "time.Duration":
		return "time.Duration(d.Int())"
	case "int8", "int16", "int32", "rune":
		bits := map[string]int{"int8": 8, "int16": 16, "int32": 32, "rune": 32}[f.Type]
		return fmt.Sprintf("%s(d.IntBits(%d))", f.Type, bits)
	case "uint64":
		return "d.Uint()"
	case "uint":
		return "uint(d.Uint())"
	default: // uint8, byte, uint16, uint32
		bits := map[string]int{"uint8": 8, "byte": 8, "uint16": 16, "uint32": 32}[f.Type]
		return fmt.Sprintf("%s(d.UintBits(%d))", f.Type, bits)
	}
}

// exprString renders a type expression.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}

// Generate renders the adapters-and-filters file for a scan result.
// The output is gofmt-formatted Go source in the scanned package.
func Generate(res *Result) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by psc; DO NOT EDIT.\n")
	fmt.Fprintf(&b, "//\n// Typed adapters in the mold of the paper's Figure 6: one XxxAdapter\n")
	fmt.Fprintf(&b, "// per obvent class, plus lifted filter expressions (§4.4.3).\n\n")
	needTime := false
	for _, c := range res.Classes {
		for _, f := range c.Codec {
			if f.Type == "time.Duration" {
				needTime = true
			}
		}
	}
	fmt.Fprintf(&b, "package %s\n\n", res.Package)
	fmt.Fprintf(&b, "import (\n")
	fmt.Fprintf(&b, "\t\"context\"\n")
	if needTime {
		fmt.Fprintf(&b, "\t\"time\"\n")
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "\t\"govents\"\n")
	fmt.Fprintf(&b, "\t\"govents/filter\"\n")
	fmt.Fprintf(&b, ")\n\n")

	for _, c := range res.Classes {
		qos := "default (unreliable, unordered)"
		if len(c.QoS) > 0 {
			qos = strings.Join(c.QoS, ", ")
		}
		fmt.Fprintf(&b, "// %sAdapter is the typed adapter for obvent class %s.\n", c.Name, c.Name)
		fmt.Fprintf(&b, "// Composed QoS semantics: %s.\n", qos)
		fmt.Fprintf(&b, "type %sAdapter struct {\n\tdomain *govents.Domain\n}\n\n", c.Name)
		fmt.Fprintf(&b, "// New%sAdapter binds the adapter to a domain.\n", c.Name)
		fmt.Fprintf(&b, "func New%sAdapter(d *govents.Domain) %sAdapter {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\td.Registry().MustRegister(%s{})\n", c.Name)
		fmt.Fprintf(&b, "\treturn %sAdapter{domain: d}\n}\n\n", c.Name)
		fmt.Fprintf(&b, "// Publish publishes an instance of %s.\n", c.Name)
		fmt.Fprintf(&b, "func (a %sAdapter) Publish(ctx context.Context, o %s) error {\n\treturn a.domain.Publish(ctx, o)\n}\n\n", c.Name, c.Name)
		fmt.Fprintf(&b, "// Subscribe subscribes to %s (and its subtypes) with a migratable\n// filter; the subscription is returned active.\n", c.Name)
		fmt.Fprintf(&b, "func (a %sAdapter) Subscribe(f *filter.Expr, handler func(%s)) (*govents.Subscription, error) {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\treturn govents.Subscribe(a.domain, f, handler)\n}\n\n")
		fmt.Fprintf(&b, "// SubscribeInactive is Subscribe in the paper's two-phase form: the\n// subscription receives nothing until Activate is called.\n")
		fmt.Fprintf(&b, "func (a %sAdapter) SubscribeInactive(f *filter.Expr, handler func(%s)) (*govents.Subscription, error) {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\treturn govents.SubscribeInactive(a.domain, f, handler)\n}\n\n")
		fmt.Fprintf(&b, "// SubscribeLocal subscribes with an opaque local predicate; the\n// subscription is returned active.\n")
		fmt.Fprintf(&b, "func (a %sAdapter) SubscribeLocal(pred func(%s) bool, handler func(%s)) (*govents.Subscription, error) {\n", c.Name, c.Name, c.Name)
		fmt.Fprintf(&b, "\treturn govents.SubscribeLocal(a.domain, pred, handler)\n}\n\n")
	}

	for _, f := range res.Filters {
		fmt.Fprintf(&b, "// %sExpr is the migratable form of filter %s (lifted by psc).\n", f.Name, f.Name)
		fmt.Fprintf(&b, "func %sExpr() *filter.Expr {\n\treturn %s\n}\n\n", f.Name, f.ExprSrc)
	}

	var codecClasses []Class
	for _, c := range res.Classes {
		if c.Codec != nil {
			codecClasses = append(codecClasses, c)
		}
	}
	if len(codecClasses) > 0 {
		fmt.Fprintf(&b, "// init registers the typed wire codecs: reflection-free mirrors of\n")
		fmt.Fprintf(&b, "// the runtime's compiled per-class programs, producing byte-for-byte\n")
		fmt.Fprintf(&b, "// identical encodings (enforced by the generator's differential test).\n")
		fmt.Fprintf(&b, "func init() {\n")
		for _, c := range codecClasses {
			fmt.Fprintf(&b, "\tgovents.RegisterWireCodec(govents.WireCodec[%s]{Encode: encode%sWire, Decode: decode%sWire})\n", c.Name, c.Name, c.Name)
		}
		fmt.Fprintf(&b, "}\n\n")
		for _, c := range codecClasses {
			fmt.Fprintf(&b, "// encode%sWire appends the compact wire encoding of o.\n", c.Name)
			fmt.Fprintf(&b, "func encode%sWire(dst []byte, o %s) []byte {\n", c.Name, c.Name)
			for _, f := range c.Codec {
				fmt.Fprintf(&b, "\t%s\n", wireEncStmt(f))
			}
			fmt.Fprintf(&b, "\treturn dst\n}\n\n")
			fmt.Fprintf(&b, "// decode%sWire decodes one compact payload, consuming all of it.\n", c.Name)
			fmt.Fprintf(&b, "func decode%sWire(data []byte) (%s, error) {\n", c.Name, c.Name)
			fmt.Fprintf(&b, "\td := govents.NewWireDecoder(data)\n")
			fmt.Fprintf(&b, "\tvar o %s\n", c.Name)
			for _, f := range c.Codec {
				fmt.Fprintf(&b, "\to.%s = %s\n", f.Path, wireDecExpr(f))
			}
			fmt.Fprintf(&b, "\treturn o, d.Finish()\n}\n\n")
		}
	}

	out, err := format.Source([]byte(b.String()))
	if err != nil {
		return nil, fmt.Errorf("psc: format generated code: %w (generator bug)", err)
	}
	return out, nil
}
