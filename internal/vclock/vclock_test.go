package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTickAndGet(t *testing.T) {
	v := New()
	if v.Get("a") != 0 {
		t.Fatal("fresh clock should be zero")
	}
	v.Tick("a").Tick("a").Tick("b")
	if v.Get("a") != 2 || v.Get("b") != 1 {
		t.Fatalf("got %v", v)
	}
}

func TestHappensBefore(t *testing.T) {
	a := VC{"p": 1}
	b := VC{"p": 2}
	if !a.Before(b) {
		t.Error("a should happen before b")
	}
	if b.Before(a) {
		t.Error("b should not happen before a")
	}
	if a.Before(a) {
		t.Error("Before must be irreflexive")
	}
}

func TestConcurrent(t *testing.T) {
	a := VC{"p": 1}
	b := VC{"q": 1}
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Error("a and b should be concurrent")
	}
	if a.Concurrent(a) {
		t.Error("a clock is not concurrent with itself")
	}
}

func TestMergeBasics(t *testing.T) {
	a := VC{"p": 3, "q": 1}
	b := VC{"q": 5, "r": 2}
	m := Merged(a, b)
	want := VC{"p": 3, "q": 5, "r": 2}
	if !m.Equal(want) {
		t.Fatalf("Merged = %v, want %v", m, want)
	}
	// Inputs unchanged.
	if !a.Equal(VC{"p": 3, "q": 1}) || !b.Equal(VC{"q": 5, "r": 2}) {
		t.Error("Merged must not mutate inputs")
	}
}

func TestNilClockIsEmpty(t *testing.T) {
	var v VC
	if !v.LessEqual(VC{"a": 1}) {
		t.Error("nil clock should be ≤ everything")
	}
	if !v.Equal(New()) {
		t.Error("nil clock should equal empty clock")
	}
	if v.String() != "{}" {
		t.Errorf("String = %q", v.String())
	}
}

func TestZeroComponentsIgnoredInEquality(t *testing.T) {
	a := VC{"p": 0, "q": 2}
	b := VC{"q": 2}
	if !a.Equal(b) {
		t.Error("explicit zero components must not affect equality")
	}
}

// randVC generates a small random clock for property tests.
func randVC(r *rand.Rand) VC {
	ids := []string{"a", "b", "c", "d"}
	v := New()
	for _, id := range ids {
		if r.Intn(2) == 0 {
			v[id] = uint64(r.Intn(5))
		}
	}
	return v
}

func TestMergePropertyCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		return Merged(a, b).Equal(Merged(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergePropertyAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		return Merged(Merged(a, b), c).Equal(Merged(a, Merged(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergePropertyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		return Merged(a, a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBeforeIsStrictPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		// Irreflexive.
		if a.Before(a) {
			return false
		}
		// Asymmetric.
		if a.Before(b) && b.Before(a) {
			return false
		}
		// Transitive.
		if a.Before(b) && b.Before(c) && !a.Before(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMergeDominates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		m := Merged(a, b)
		return a.LessEqual(m) && b.LessEqual(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyIndependence(t *testing.T) {
	a := VC{"p": 1}
	b := a.Copy()
	b.Tick("p")
	if a.Get("p") != 1 {
		t.Error("Copy must be independent of the original")
	}
}

func TestString(t *testing.T) {
	v := VC{"b": 2, "a": 1}
	if got := v.String(); got != "{a:1 b:2}" {
		t.Errorf("String = %q", got)
	}
}
