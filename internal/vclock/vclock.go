// Package vclock implements vector clocks, the substrate for the
// causally ordered obvent delivery of the paper's §3.1.2: causally
// ordered obvents "are delivered in the order they are published, as
// determined by the happens-before relationship [Lam78]".
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// VC is a vector clock: a map from process identifier to the number of
// causally relevant events observed from that process. The nil map is a
// valid, empty clock.
type VC map[string]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Copy returns an independent copy of the clock.
func (v VC) Copy() VC {
	out := make(VC, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments the component of process id and returns the clock for
// chaining. Tick mutates the receiver; the receiver must be non-nil.
func (v VC) Tick(id string) VC {
	v[id]++
	return v
}

// Get returns the component for process id (zero if absent).
func (v VC) Get(id string) uint64 { return v[id] }

// Merge sets the receiver to the component-wise maximum of itself and
// other. The receiver must be non-nil.
func (v VC) Merge(other VC) VC {
	for k, n := range other {
		if n > v[k] {
			v[k] = n
		}
	}
	return v
}

// Merged returns a new clock that is the component-wise maximum of a and
// b without mutating either.
func Merged(a, b VC) VC {
	out := a.Copy()
	out.Merge(b)
	return out
}

// LessEqual reports whether v ≤ other component-wise (v happened before
// or equals other).
func (v VC) LessEqual(other VC) bool {
	for k, n := range v {
		if n > other[k] {
			return false
		}
	}
	return true
}

// Before reports whether v happened strictly before other: v ≤ other and
// v ≠ other.
func (v VC) Before(other VC) bool {
	return v.LessEqual(other) && !other.LessEqual(v)
}

// Concurrent reports whether neither clock happened before the other.
func (v VC) Concurrent(other VC) bool {
	return !v.LessEqual(other) && !other.LessEqual(v)
}

// Equal reports component-wise equality (missing components count as 0).
func (v VC) Equal(other VC) bool {
	return v.LessEqual(other) && other.LessEqual(v)
}

// String renders the clock deterministically, e.g. "{a:1 b:3}".
func (v VC) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		if v[k] != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
