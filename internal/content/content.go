// Package content implements attribute-value content-based
// publish/subscribe in the style the paper attributes to the Cambridge
// Event Architecture and classic content-based engines (§6.1.2,
// §2.3.2): events are viewed "as sets of attributes, forcing the
// application to define filters based on attribute-value pairs".
//
// It is the baseline that type-based publish/subscribe with
// encapsulation-preserving filters (LP2) is contrasted against: here
// the event's representation is fully exposed — subscriptions name raw
// attributes — and there is no typing of events beyond the attribute
// map.
package content

import (
	"fmt"
	"reflect"
	"sync"
)

// Event is an attribute-value record (the self-describing message of
// [OPSS93]).
type Event map[string]any

// Op is a predicate operator.
type Op int

// Predicate operators.
const (
	Eq Op = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
	Exists
)

// Pred is one attribute predicate.
type Pred struct {
	Attr string
	Op   Op
	Val  any
}

// Matches evaluates the predicate against an event. Missing attributes
// and type mismatches fail the predicate.
func (p Pred) Matches(e Event) bool {
	v, ok := e[p.Attr]
	if p.Op == Exists {
		return ok
	}
	if !ok {
		return false
	}
	cmp, ok := compare(v, p.Val)
	if !ok {
		return false
	}
	switch p.Op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// compare yields a three-way comparison for numbers and strings.
func compare(a, b any) (int, bool) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		switch {
		case as < bs:
			return -1, true
		case as > bs:
			return 1, true
		default:
			return 0, true
		}
	}
	if reflect.DeepEqual(a, b) {
		return 0, true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	default:
		return 0, false
	}
}

// Handler receives matching events.
type Handler func(Event)

// Bus is a content-based publish/subscribe engine: subscriptions are
// conjunctions of attribute predicates.
type Bus struct {
	mu     sync.RWMutex
	subs   map[int]*subscription
	nextID int
}

type subscription struct {
	preds   []Pred
	handler Handler
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

// Subscribe registers a conjunction of predicates. Returns a cancel
// function.
func (b *Bus) Subscribe(preds []Pred, h Handler) (cancel func(), err error) {
	for _, p := range preds {
		if p.Attr == "" {
			return nil, fmt.Errorf("content: predicate with empty attribute")
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.subs[id] = &subscription{preds: preds, handler: h}
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs, id)
	}, nil
}

// Publish delivers the event to every matching subscription
// (synchronously; the bus is a matching baseline) and returns how many
// matched.
func (b *Bus) Publish(e Event) int {
	b.mu.RLock()
	var fire []Handler
	for _, s := range b.subs {
		ok := true
		for _, p := range s.preds {
			if !p.Matches(e) {
				ok = false
				break
			}
		}
		if ok {
			fire = append(fire, s.handler)
		}
	}
	b.mu.RUnlock()
	for _, h := range fire {
		h(e)
	}
	return len(fire)
}
