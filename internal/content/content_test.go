package content

import (
	"sync/atomic"
	"testing"
)

func quoteEvent(company string, price float64, amount int) Event {
	return Event{"kind": "quote", "company": company, "price": price, "amount": amount}
}

func TestPredMatches(t *testing.T) {
	e := quoteEvent("Telco", 80, 10)
	tests := []struct {
		name string
		p    Pred
		want bool
	}{
		{"eq string", Pred{"company", Eq, "Telco"}, true},
		{"ne string", Pred{"company", Ne, "Acme"}, true},
		{"lt", Pred{"price", Lt, 100.0}, true},
		{"lt false", Pred{"price", Lt, 50.0}, false},
		{"le boundary", Pred{"price", Le, 80.0}, true},
		{"gt int vs float promotion", Pred{"amount", Gt, 5.0}, true},
		{"ge", Pred{"amount", Ge, 10}, true},
		{"exists", Pred{"kind", Exists, nil}, true},
		{"missing attr", Pred{"ghost", Eq, 1}, false},
		{"missing attr exists", Pred{"ghost", Exists, nil}, false},
		{"type mismatch", Pred{"company", Lt, 10}, false},
		{"string ordering", Pred{"company", Lt, "Z"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Matches(e); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBusConjunction(t *testing.T) {
	b := New()
	var got atomic.Int32
	cancel, err := b.Subscribe([]Pred{
		{"kind", Eq, "quote"},
		{"price", Lt, 100.0},
		{"company", Eq, "Telco"},
	}, func(Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	if n := b.Publish(quoteEvent("Telco", 80, 10)); n != 1 {
		t.Errorf("matched %d", n)
	}
	if n := b.Publish(quoteEvent("Telco", 150, 10)); n != 0 {
		t.Errorf("matched %d", n)
	}
	if n := b.Publish(quoteEvent("Acme", 80, 10)); n != 0 {
		t.Errorf("matched %d", n)
	}
	if got.Load() != 1 {
		t.Errorf("handler fired %d times", got.Load())
	}

	cancel()
	if n := b.Publish(quoteEvent("Telco", 80, 10)); n != 0 {
		t.Errorf("matched %d after cancel", n)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New()
	if _, err := b.Subscribe([]Pred{{Attr: ""}}, nil); err == nil {
		t.Error("empty attribute must fail")
	}
}

func TestEmptyConjunctionMatchesAll(t *testing.T) {
	b := New()
	var got atomic.Int32
	_, _ = b.Subscribe(nil, func(Event) { got.Add(1) })
	b.Publish(Event{"anything": 1})
	if got.Load() != 1 {
		t.Error("empty conjunction should match everything")
	}
}

func TestEncapsulationContrast(t *testing.T) {
	// Documenting the LP2 violation the paper charges this style with:
	// the subscription names the raw attribute "price"; if the
	// publisher renames the attribute (an implementation detail under
	// encapsulation), existing subscriptions silently stop matching.
	b := New()
	var got atomic.Int32
	_, _ = b.Subscribe([]Pred{{"price", Lt, 100.0}}, func(Event) { got.Add(1) })
	b.Publish(Event{"price": 80.0})
	b.Publish(Event{"priceUSD": 80.0}) // "refactored" publisher
	if got.Load() != 1 {
		t.Fatalf("got %d", got.Load())
	}
}
