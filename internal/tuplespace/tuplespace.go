// Package tuplespace implements the Linda tuple space ([Gel85]), the
// paper's §6.3 "spiritual ancestor" baseline of publish/subscribe, plus
// the JavaSpaces-style notify extension the paper cites as a late
// callback addition (§6.3.4).
//
// A tuple is an ordered sequence of values; templates match tuples
// field-wise with actuals (exact values) and formals (type
// placeholders), reproducing Linda's exact-type matching. The original
// three primitives are provided — Out (cf. publish), Rd (read without
// removing), In (withdraw) — in blocking and non-blocking variants, and
// Notify adds the asynchronous callback that turns the space into a
// weakly typed publish/subscribe engine (the contrast the paper draws
// with its strongly typed obvents, §5.5.2).
package tuplespace

import (
	"fmt"
	"reflect"
	"sync"
)

// Tuple is an ordered sequence of values.
type Tuple []any

// Field is one template position.
type Field struct {
	actual  any
	formal  reflect.Type
	anyType bool
}

// Val builds an actual: the field matches only an equal value.
func Val(v any) Field { return Field{actual: v} }

// Type builds a formal: the field matches any value of exactly type T
// (Linda's exact type equivalence, which the paper contrasts with
// subtyping, §6.3.4).
func Type[T any]() Field { return Field{formal: reflect.TypeOf((*T)(nil)).Elem()} }

// Any builds a wildcard matching any value.
func Any() Field { return Field{anyType: true} }

// Template is an ordered sequence of fields.
type Template []Field

// Matches reports whether the template matches the tuple.
func (tpl Template) Matches(t Tuple) bool {
	if len(tpl) != len(t) {
		return false
	}
	for i, f := range tpl {
		v := t[i]
		switch {
		case f.anyType:
			continue
		case f.formal != nil:
			if reflect.TypeOf(v) != f.formal {
				return false
			}
		default:
			if !reflect.DeepEqual(f.actual, v) {
				return false
			}
		}
	}
	return true
}

// Space is a tuple space. The zero value is not usable; create with New.
type Space struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tuples  []Tuple
	watches map[int]*watch
	nextID  int
	closed  bool
	wg      sync.WaitGroup
}

type watch struct {
	tpl     Template
	handler func(Tuple)
}

// New returns an empty tuple space.
func New() *Space {
	s := &Space{watches: make(map[int]*watch)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Close releases the space; blocked Rd/In calls return false.
func (s *Space) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Out inserts a tuple into the space (the analog of publish).
func (s *Space) Out(t Tuple) error {
	cp := make(Tuple, len(t))
	copy(cp, t)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("tuplespace: closed")
	}
	s.tuples = append(s.tuples, cp)
	var fire []*watch
	for _, w := range s.watches {
		if w.tpl.Matches(cp) {
			fire = append(fire, w)
		}
	}
	s.cond.Broadcast()
	s.wg.Add(len(fire))
	s.mu.Unlock()
	for _, w := range fire {
		go func(w *watch) {
			defer s.wg.Done()
			w.handler(cp)
		}(w)
	}
	return nil
}

// RdP reads (without removing) a matching tuple, non-blocking.
func (s *Space) RdP(tpl Template) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i := s.findLocked(tpl); i >= 0 {
		return s.copyLocked(i), true
	}
	return nil, false
}

// Rd blocks until a matching tuple exists, then reads it without
// removing. Returns false if the space closes first.
func (s *Space) Rd(tpl Template) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if i := s.findLocked(tpl); i >= 0 {
			return s.copyLocked(i), true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// InP withdraws a matching tuple, non-blocking.
func (s *Space) InP(tpl Template) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i := s.findLocked(tpl); i >= 0 {
		return s.removeLocked(i), true
	}
	return nil, false
}

// In blocks until a matching tuple exists, then withdraws it. Each
// tuple is withdrawn by exactly one caller. Returns false if the space
// closes first.
func (s *Space) In(tpl Template) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if i := s.findLocked(tpl); i >= 0 {
			return s.removeLocked(i), true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// Notify registers an asynchronous callback fired for every tuple
// subsequently inserted that matches the template — the
// JavaSpaces-style publish/subscribe extension. It returns a cancel
// function. Note the weak typing: handlers receive a raw Tuple, in
// contrast to the typed obvent handlers of package core (paper §6.3.4:
// such systems "promote publish/subscribe interaction through some
// weakly typed reified bus").
func (s *Space) Notify(tpl Template, handler func(Tuple)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.watches[id] = &watch{tpl: tpl, handler: handler}
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.watches, id)
	}
}

// Len returns the number of stored tuples.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

func (s *Space) findLocked(tpl Template) int {
	for i, t := range s.tuples {
		if tpl.Matches(t) {
			return i
		}
	}
	return -1
}

func (s *Space) copyLocked(i int) Tuple {
	out := make(Tuple, len(s.tuples[i]))
	copy(out, s.tuples[i])
	return out
}

func (s *Space) removeLocked(i int) Tuple {
	t := s.tuples[i]
	s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
	return t
}
