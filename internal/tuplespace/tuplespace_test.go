package tuplespace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOutAndRdP(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.Out(Tuple{"stock", "Telco", 80.0, 10}); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		tpl  Template
		want bool
	}{
		{"exact actuals", Template{Val("stock"), Val("Telco"), Val(80.0), Val(10)}, true},
		{"formals by type", Template{Val("stock"), Type[string](), Type[float64](), Type[int]()}, true},
		{"wildcards", Template{Any(), Any(), Any(), Any()}, true},
		{"wrong value", Template{Val("stock"), Val("Acme"), Any(), Any()}, false},
		{"wrong type formal", Template{Val("stock"), Type[int](), Any(), Any()}, false},
		{"wrong arity", Template{Val("stock")}, false},
		// Linda's exact type equivalence: int does not match float64.
		{"no numeric promotion", Template{Val("stock"), Any(), Type[int](), Any()}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, ok := s.RdP(tt.tpl)
			if ok != tt.want {
				t.Errorf("RdP = %v, want %v", ok, tt.want)
			}
		})
	}
	if s.Len() != 1 {
		t.Errorf("Rd must not remove; len = %d", s.Len())
	}
}

func TestInRemoves(t *testing.T) {
	s := New()
	defer s.Close()
	_ = s.Out(Tuple{"a", 1})
	got, ok := s.InP(Template{Val("a"), Any()})
	if !ok || got[1] != 1 {
		t.Fatalf("InP = %v, %v", got, ok)
	}
	if _, ok := s.InP(Template{Val("a"), Any()}); ok {
		t.Error("tuple withdrawn twice")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestBlockingRdWakesOnOut(t *testing.T) {
	s := New()
	defer s.Close()
	got := make(chan Tuple, 1)
	go func() {
		tp, ok := s.Rd(Template{Val("key"), Any()})
		if ok {
			got <- tp
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block
	_ = s.Out(Tuple{"key", 42})
	select {
	case tp := <-got:
		if tp[1] != 42 {
			t.Errorf("got %v", tp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Rd never woke")
	}
}

func TestInExactlyOnceUnderConcurrency(t *testing.T) {
	// The core tuple-space invariant: each tuple is withdrawn by
	// exactly one of many concurrent In callers.
	s := New()
	const tuples, workers = 100, 8
	var withdrawn atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := s.In(Template{Val("job"), Any()}); ok {
					withdrawn.Add(1)
				} else {
					return // closed
				}
			}
		}()
	}
	for i := 0; i < tuples; i++ {
		_ = s.Out(Tuple{"job", i})
	}
	// Wait until all withdrawn, then close to release workers.
	deadline := time.Now().Add(5 * time.Second)
	for withdrawn.Load() < tuples && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	if withdrawn.Load() != tuples {
		t.Fatalf("withdrawn %d of %d", withdrawn.Load(), tuples)
	}
	if s.Len() != 0 {
		t.Errorf("len = %d after all In", s.Len())
	}
}

func TestNotify(t *testing.T) {
	s := New()
	var cheap, all atomic.Int32
	cancel, _ := func() (func(), error) {
		return s.Notify(Template{Val("quote"), Any(), Type[float64]()}, func(tp Tuple) {
			all.Add(1)
			if tp[2].(float64) < 100 {
				cheap.Add(1)
			}
		}), nil
	}()
	_ = s.Out(Tuple{"quote", "Telco", 80.0})
	_ = s.Out(Tuple{"quote", "Acme", 150.0})
	_ = s.Out(Tuple{"other", "x"}) // no match
	deadline := time.Now().Add(2 * time.Second)
	for all.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if all.Load() != 2 || cheap.Load() != 1 {
		t.Errorf("all=%d cheap=%d", all.Load(), cheap.Load())
	}
	cancel()
	_ = s.Out(Tuple{"quote", "Telco", 10.0})
	time.Sleep(20 * time.Millisecond)
	if all.Load() != 2 {
		t.Error("handler fired after cancel")
	}
	s.Close()
}

func TestNotifyOnlyFutureTuples(t *testing.T) {
	s := New()
	defer s.Close()
	_ = s.Out(Tuple{"past"})
	var n atomic.Int32
	_ = s.Notify(Template{Val("past")}, func(Tuple) { n.Add(1) })
	time.Sleep(20 * time.Millisecond)
	if n.Load() != 0 {
		t.Error("Notify must only see tuples inserted after registration")
	}
}

func TestOutAfterCloseFails(t *testing.T) {
	s := New()
	s.Close()
	if err := s.Out(Tuple{"x"}); err == nil {
		t.Error("Out after Close should fail")
	}
}

func TestTupleIsolation(t *testing.T) {
	s := New()
	defer s.Close()
	orig := Tuple{"k", 1}
	_ = s.Out(orig)
	orig[1] = 999 // mutate after Out
	got, _ := s.RdP(Template{Val("k"), Any()})
	if got[1] != 1 {
		t.Error("space aliased the caller's tuple")
	}
}
