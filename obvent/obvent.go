// Package obvent is the public surface of the obvent type system: the
// marker bases applications embed to declare obvent classes and compose
// QoS semantics onto them (paper §2.1, §3.1.2), and the runtime type
// registry behind type-based matching (§2.2).
//
// It is a thin facade over the engine's internal implementation: every
// type here is an alias, so values flow between the public API and the
// substrate without conversion.
//
// Declaring an obvent class is embedding:
//
//	type StockQuote struct {
//		obvent.Base               // publishable
//		obvent.ReliableBase       // + reliable delivery (optional)
//		Company string
//		Price   float64
//	}
//
// Subtyping follows Go embedding (implicit declaration) and interface
// satisfaction (explicit declaration); subscriptions to a supertype
// receive all of its subtypes.
package obvent

import (
	"reflect"

	internal "govents/internal/obvent"
)

// Obvent is the interface of all publishable values: any struct
// embedding Base satisfies it.
type Obvent = internal.Obvent

// Base makes the embedding struct publishable (the root marker).
type Base = internal.Base

// QoS marker bases: embed them to compose delivery semantics onto a
// class (paper §3.1.2, Figure 4).
type (
	// ReliableBase requests reliable delivery.
	ReliableBase = internal.ReliableBase
	// CertifiedBase requests certified delivery: disconnected durable
	// subscribers eventually receive the obvent exactly once.
	CertifiedBase = internal.CertifiedBase
	// TotalOrderBase requests totally ordered delivery.
	TotalOrderBase = internal.TotalOrderBase
	// FIFOOrderBase requests per-publisher FIFO delivery.
	FIFOOrderBase = internal.FIFOOrderBase
	// CausalOrderBase requests causally ordered delivery.
	CausalOrderBase = internal.CausalOrderBase
	// TimelyBase attaches a time-to-live; expired obvents are dropped
	// instead of delivered.
	TimelyBase = internal.TimelyBase
	// PriorityBase lets the obvent overtake lower-priority backlog.
	PriorityBase = internal.PriorityBase
)

// Marker interfaces resolved by the QoS system (satisfied by the bases
// above; applications normally embed the bases rather than implement
// these directly).
type (
	Reliable    = internal.Reliable
	Certified   = internal.Certified
	TotalOrder  = internal.TotalOrder
	FIFOOrder   = internal.FIFOOrder
	CausalOrder = internal.CausalOrder
	Timely      = internal.Timely
	Prioritary  = internal.Prioritary
)

// Semantics is the resolved QoS of an obvent value.
type Semantics = internal.Semantics

// Reliability is the delivery-reliability level.
type Reliability = internal.Reliability

// Reliability levels, weakest first.
const (
	Unreliable        = internal.Unreliable
	ReliableDelivery  = internal.ReliableDelivery
	CertifiedDelivery = internal.CertifiedDelivery
)

// Ordering is the delivery-ordering level.
type Ordering = internal.Ordering

// Ordering levels, weakest first.
const (
	NoOrder = internal.NoOrder
	FIFO    = internal.FIFO
	Causal  = internal.Causal
	Total   = internal.Total
)

// Resolve computes the QoS semantics of an obvent value from its type's
// embedded markers and its timely/priority state.
func Resolve(o Obvent) Semantics { return internal.Resolve(o) }

// Registry tracks the obvent classes known to a process and their
// subtype relation; see govents.Open's WithRegistry for sharing one
// across engines.
type Registry = internal.Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return internal.NewRegistry() }

// TypeName returns the wire-level name of a Go type.
func TypeName(t reflect.Type) string { return internal.TypeName(t) }

// TypeOf returns the reflect.Type described by the type parameter,
// which may be an interface type.
func TypeOf[T any]() reflect.Type { return internal.TypeOf[T]() }

// Conforms reports whether obvent o conforms to the Go type target
// (interface satisfaction or struct embedding).
func Conforms(o Obvent, target reflect.Type) bool { return internal.Conforms(o, target) }
