package govents

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"

	"govents/netsim"
)

// GroupConfig configures OpenGroup.
type GroupConfig struct {
	// Net is the fault model of the group's simulated network.
	Net netsim.Config
	// Durability, when non-empty, gives every member a durability
	// directory (WithDurability) under this root: member i uses
	// Durability/node-i, and keeps it across Crash/Restart cycles.
	Durability string
	// Options returns extra Open options for member i (may be nil). It
	// is consulted again on Restart, so option state must be
	// reconstructible — pass constructors, not captured live handles.
	Options func(i int, addr string) []Option
}

// A DomainGroup is a crash-restart test harness: n distributed Domain
// members joined over one simulated network, with partition, heal,
// crash and restart controls that keep each member's durable state
// (GroupConfig.Durability) across process "incarnations". It exists to
// drive chaos schedules against the durability plane — the
// experimental-harness analog of the paper's evaluation runs — and is
// equally usable from application tests.
//
// Methods are safe for concurrent use, but schedules are usually
// sequential: fault, settle, assert.
type DomainGroup struct {
	net   *netsim.Network
	cfg   GroupConfig
	addrs []string

	mu      sync.Mutex
	domains []*Domain // domains[i] == nil while member i is crashed
}

// OpenGroup starts a group of n distributed domains named node-0 …
// node-(n-1), each a peer of all the others. On error, already-opened
// members are closed.
func OpenGroup(ctx context.Context, n int, cfg GroupConfig) (*DomainGroup, error) {
	if n <= 0 {
		return nil, fmt.Errorf("govents: open group: need at least one member, got %d", n)
	}
	g := &DomainGroup{
		net:     netsim.New(cfg.Net),
		cfg:     cfg,
		addrs:   make([]string, n),
		domains: make([]*Domain, n),
	}
	for i := range g.addrs {
		g.addrs[i] = "node-" + strconv.Itoa(i)
	}
	for i := range g.addrs {
		d, err := g.open(ctx, i)
		if err != nil {
			_ = g.Close(context.Background())
			return nil, fmt.Errorf("govents: open group member %d: %w", i, err)
		}
		g.domains[i] = d
	}
	return g, nil
}

// open starts (or re-starts) member i on a fresh endpoint.
func (g *DomainGroup) open(ctx context.Context, i int) (*Domain, error) {
	addr := g.addrs[i]
	ep, err := g.net.NewEndpoint(addr)
	if err != nil {
		return nil, err
	}
	opts := []Option{
		WithTransport(ep),
		WithPeers(g.addrs...),
	}
	if g.cfg.Durability != "" {
		opts = append(opts, WithDurability(filepath.Join(g.cfg.Durability, addr)))
	}
	if g.cfg.Options != nil {
		opts = append(opts, g.cfg.Options(i, addr)...)
	}
	return Open(ctx, addr, opts...)
}

// Len returns the group size.
func (g *DomainGroup) Len() int { return len(g.addrs) }

// Addr returns member i's transport address (node-i).
func (g *DomainGroup) Addr(i int) string { return g.addrs[i] }

// DurabilityDir returns member i's durability directory, or "" when
// the group runs without durability. It stays valid while the member is
// crashed — which is when fault-injection tests want to reach into it.
func (g *DomainGroup) DurabilityDir(i int) string {
	if g.cfg.Durability == "" {
		return ""
	}
	return filepath.Join(g.cfg.Durability, g.addrs[i])
}

// Domain returns member i, or nil while it is crashed.
func (g *DomainGroup) Domain(i int) *Domain {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.domains[i]
}

// Network returns the underlying simulated network, for fault-model
// control not covered by the harness methods.
func (g *DomainGroup) Network() *netsim.Network { return g.net }

// Partition cuts all links between the members in side a and those in
// side b (both directions); members within one side stay connected.
func (g *DomainGroup) Partition(a, b []int) {
	g.net.Partition(g.addrList(a), g.addrList(b))
}

// Heal removes all partitions.
func (g *DomainGroup) Heal() { g.net.Heal() }

// Settle blocks until the network has no in-flight messages.
func (g *DomainGroup) Settle() { g.net.Settle() }

func (g *DomainGroup) addrList(is []int) []string {
	out := make([]string, len(is))
	for j, i := range is {
		out[j] = g.addrs[i]
	}
	return out
}

// Crash takes member i down: the network drops its traffic immediately
// (in-flight messages to it are lost) and the member's Domain is closed,
// releasing its durability directory for the next incarnation. Crashing
// a crashed member is an error.
func (g *DomainGroup) Crash(ctx context.Context, i int) error {
	g.mu.Lock()
	d := g.domains[i]
	g.domains[i] = nil
	g.mu.Unlock()
	if d == nil {
		return fmt.Errorf("govents: crash %s: already down", g.addrs[i])
	}
	g.net.Crash(g.addrs[i])
	if err := d.Close(ctx); err != nil {
		return fmt.Errorf("govents: crash %s: %w", g.addrs[i], err)
	}
	return nil
}

// Restart brings a crashed member back as a new incarnation: a fresh
// endpoint under the same address, a fresh Domain over the same
// durability directory. The reborn member re-advertises under a new
// epoch, so surviving members replace the dead incarnation's routing
// state instead of stale-rejecting the restarted one. Restarting a live
// member is an error.
func (g *DomainGroup) Restart(ctx context.Context, i int) (*Domain, error) {
	g.mu.Lock()
	alive := g.domains[i] != nil
	g.mu.Unlock()
	if alive {
		return nil, fmt.Errorf("govents: restart %s: still up", g.addrs[i])
	}
	g.net.Restart(g.addrs[i])
	d, err := g.open(ctx, i)
	if err != nil {
		return nil, fmt.Errorf("govents: restart %s: %w", g.addrs[i], err)
	}
	g.mu.Lock()
	g.domains[i] = d
	g.mu.Unlock()
	return d, nil
}

// Close shuts down every live member and the network. The first error
// wins; shutdown continues regardless.
func (g *DomainGroup) Close(ctx context.Context) error {
	g.mu.Lock()
	domains := make([]*Domain, len(g.domains))
	copy(domains, g.domains)
	for i := range g.domains {
		g.domains[i] = nil
	}
	g.mu.Unlock()

	var firstErr error
	for _, d := range domains {
		if d == nil {
			continue
		}
		if err := d.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := g.net.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
